// Command adrias-serve exposes the Adrias orchestrator as a long-lived
// placement service: an HTTP/JSON API over the batching admission pipeline
// of internal/serve, backed by a trained predictor and a live simulated
// testbed that keeps advancing (with ambient load) while the server runs.
//
//	POST /v1/place        {"app":"gmm","dry_run":false,"deadline_ms":250}
//	GET  /healthz
//	GET  /metrics         (Prometheus text exposition: serve, bus, models,
//	                       thymesis and Go runtime series)
//	GET  /debug/traces    (request traces with per-stage spans + percentiles)
//	GET  /debug/decisions (placement audit log: predictions, β, QoS, reason)
//	GET  /debug/slo       (SLO burn rates, error budgets, alert states)
//	GET  /debug/events    (wide-event admission log, sampled)
//
// Usage:
//
//	adrias-serve [-listen 127.0.0.1:7700] [-models dir] [-beta 0.8]
//	             [-batch-window 2ms] [-max-batch 64] [-queue 256]
//	             [-timeout 2s] [-tick 1s] [-sim-per-tick 1] [-ambient 0.08]
//	             [-drain 10s] [-seed 1] [-debug-addr 127.0.0.1:7701]
//	             [-bus-addr 127.0.0.1:7601]
//	             [-fault-spec "predict-error@4+40;fabric-flap@8+24"]
//	             [-breaker-threshold 5] [-breaker-cooldown 10] [-no-breaker]
//	             [-quantized] [-learn] [-learn-drift-threshold 0.35]
//	             [-learn-min-outcomes 64] [-learn-shadow-warmup 32]
//	             [-learn-cooldown 300] [-ambient-ramp-to 0.6]
//	             [-ambient-ramp-sec 300] [-replicas 1] [-nodes 1]
//	             [-slo-spec "downgrade-rate:budget=0.05,fast=15/60@2"]
//	             [-event-log events.jsonl] [-event-sample 1]
//
// Without -models the fast offline phase trains a small model set first
// (≈10 s). -debug-addr opens a second listener with the pprof surface
// (/debug/pprof/). -bus-addr serves the in-process event bus over TCP so
// external subscribers can follow decisions and monitoring samples live.
// SIGINT/SIGTERM stops intake, drains admitted requests, and exits.
//
// -fault-spec arms the deterministic fault injector (chaos mode): a
// semicolon-separated schedule of kind@start+duration[=param] events in
// simulated seconds relative to serving start — see internal/faults. The
// service keeps answering through injected faults on the graceful-degradation
// path (circuit breaker + cached/safe-local fallbacks), reporting "degraded"
// on /healthz while impaired.
//
// -learn arms the online model-lifecycle loop (DESIGN.md §13): realized
// outcomes are joined back to their audited decisions, rolling prediction
// error above -learn-drift-threshold triggers a background retrain, the
// candidate shadow-evaluates on live admissions, and a winning candidate is
// hot-swapped in — with the int8 twin re-derived when -quantized. Promotions
// appear in /debug/decisions ("model-swap") and on bus topic
// "model.generations". -ambient-ramp-to/-ambient-ramp-sec shift the ambient
// load after start, the induced-drift program the smoke test uses.
//
// -replicas runs N placement deciders over a shared versioned rack-state
// view (DESIGN.md §14): each replica decides optimistically without the
// engine lock and commits its claims through a single sequencer; losers of
// the commit race retry against the refreshed view and downgrade to safe
// local with reason "commit-conflict" when the headroom is gone. -nodes
// sizes the simulated rack — each node carries its own ThymesisFlow fabric
// and remote pool, and placements choose which pool to claim (responses and
// /debug/decisions carry the node). -learn composes with -replicas > 1:
// each replica shard stamps the model generation it cloned from and
// re-clones from the promoted live predictor within one batch of a hot
// swap, so /debug/decisions records carry the generation ("model_gen") and
// the deciding replica ("replica") per decision.
//
// The service always evaluates its SLO catalog (DESIGN.md §15) off the
// testbed tick — admission latency, queue wait, downgrade rate,
// commit-conflict rate, predict-error rate, breaker-open time — with
// Google-SRE multi-window burn-rate alerting. Alert transitions are
// published on bus topic "obs.alerts", counted on /metrics
// (adrias_slo_*), and served as JSON at /debug/slo. -slo-spec overrides
// budgets, windows, burn thresholds, and latency thresholds per objective
// (obs.ParseSLOSpec syntax). Every committed admission additionally emits
// one wide event into a ring behind /debug/events; -event-log appends the
// same records as JSONL, -event-sample keeps one in N.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"adrias"
	"adrias/internal/bus"
	"adrias/internal/faults"
	"adrias/internal/learn"
	"adrias/internal/models"
	"adrias/internal/obs"
	"adrias/internal/profiling"
	"adrias/internal/serve"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7700", "HTTP listen address (host:port)")
	modelsDir := flag.String("models", "", "directory of pre-trained models (empty: train fast models now)")
	beta := flag.Float64("beta", 0.8, "BE slack parameter β (must be > 0)")
	qosFactor := flag.Float64("qos-factor", 20, "LC p99 target = BaseP50Ms × factor (0 disables LC offloading)")
	batchWindow := flag.Duration("batch-window", 2*time.Millisecond, "admission coalescing window (negative: no wait)")
	maxBatch := flag.Int("max-batch", 64, "max requests per coalesced batch")
	queueDepth := flag.Int("queue", 256, "admission queue depth (full queue → 429)")
	timeout := flag.Duration("timeout", 2*time.Second, "default per-request deadline")
	tick := flag.Duration("tick", time.Second, "wall-clock interval between testbed advances")
	simPerTick := flag.Float64("sim-per-tick", 1, "simulated seconds per advance")
	ambient := flag.Float64("ambient", 0.08, "ambient arrivals per simulated second")
	drain := flag.Duration("drain", 10*time.Second, "graceful-drain budget on shutdown")
	seed := flag.Int64("seed", 1, "testbed and ambient-load seed")
	debugAddr := flag.String("debug-addr", "", "pprof listen address (empty: disabled)")
	busAddr := flag.String("bus-addr", "", "TCP bus listen address for live decision/sample subscribers (empty: in-process only)")
	faultSpec := flag.String("fault-spec", "", "fault-injection schedule, e.g. \"predict-error@4+40;fabric-flap@8+24\" (empty: no injection)")
	faultSeed := flag.Int64("fault-seed", 1, "fault injector seed (NaN coin flips, replayable)")
	breakerThreshold := flag.Int("breaker-threshold", 0, "consecutive predictor failures that trip the circuit breaker (0: default 5)")
	breakerCooldown := flag.Float64("breaker-cooldown", 0, "simulated seconds an open breaker waits before half-open probing (0: default 10)")
	noBreaker := flag.Bool("no-breaker", false, "disable the predictor circuit breaker (faults hit the decision path raw)")
	quantized := flag.Bool("quantized", false, "serve placements from the int8 quantized inference twin")
	learnOn := flag.Bool("learn", false, "run the online learning loop: outcome capture, drift-triggered retrain, shadow eval, hot swap")
	learnDriftThreshold := flag.Float64("learn-drift-threshold", 0, "mean relative prediction error that arms a retrain (0: default 0.35)")
	learnDriftWindow := flag.Int("learn-drift-window", 0, "rolling prediction-error window per tier (0: default 256)")
	learnMinOutcomes := flag.Int("learn-min-outcomes", 0, "buffered outcomes of a class required before it retrains (0: default 64)")
	learnShadowWarmup := flag.Int("learn-shadow-warmup", 0, "shadow comparisons before the promote/discard verdict (0: default 32)")
	learnShadowMargin := flag.Float64("learn-shadow-margin", 0, "relative slack the candidate gets in the verdict (0: must strictly win)")
	learnCooldown := flag.Float64("learn-cooldown", 0, "simulated seconds between lifecycle rounds (0: default 300)")
	learnBuffer := flag.Int("learn-buffer", 0, "training ring capacity in outcomes (0: default 4096)")
	learnEpochs := flag.Int("learn-epochs", 0, "candidate fit epochs (0: inherit the live model's configuration)")
	ambientRampTo := flag.Float64("ambient-ramp-to", 0, "ambient rate to ramp toward after serving starts (0: no ramp)")
	ambientRampSec := flag.Float64("ambient-ramp-sec", 0, "simulated seconds over which the ambient ramp completes")
	replicas := flag.Int("replicas", 1, "replica placement deciders over the shared rack-state view")
	rackNodes := flag.Int("nodes", 1, "simulated rack size: nodes with their own fabric and remote pool")
	sloSpec := flag.String("slo-spec", "", "per-objective SLO overrides, e.g. \"downgrade-rate:budget=0.05,fast=15/60@2,slow=120/480@1\" (empty: defaults)")
	eventLog := flag.String("event-log", "", "append committed-admission wide events as JSONL to this file (empty: ring only)")
	eventSample := flag.Int("event-sample", 1, "record one admission wide event in N (1: every admission)")
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "adrias-serve: "+format+"\n", args...)
		os.Exit(2)
	}
	if *beta <= 0 {
		fail("-beta must be > 0 (got %v)", *beta)
	}
	if _, _, err := net.SplitHostPort(*listen); err != nil {
		fail("invalid -listen address %q: %v", *listen, err)
	}
	if *maxBatch < 1 {
		fail("-max-batch must be ≥ 1 (got %d)", *maxBatch)
	}
	if *queueDepth < 1 {
		fail("-queue must be ≥ 1 (got %d)", *queueDepth)
	}
	if *tick <= 0 || *simPerTick <= 0 {
		fail("-tick and -sim-per-tick must be > 0")
	}
	if *ambient < 0 {
		fail("-ambient must be ≥ 0 (got %v)", *ambient)
	}
	if *ambientRampTo > 0 && *ambientRampSec <= 0 {
		fail("-ambient-ramp-to requires -ambient-ramp-sec > 0")
	}
	if *replicas < 1 {
		fail("-replicas must be ≥ 1 (got %d)", *replicas)
	}
	if *rackNodes < 1 {
		fail("-nodes must be ≥ 1 (got %d)", *rackNodes)
	}
	if *eventSample < 1 {
		fail("-event-sample must be ≥ 1 (got %d)", *eventSample)
	}
	var learnCfg *learn.Config
	if *learnOn {
		learnCfg = &learn.Config{
			DriftThreshold: *learnDriftThreshold,
			DriftWindow:    *learnDriftWindow,
			MinOutcomes:    *learnMinOutcomes,
			ShadowWarmup:   *learnShadowWarmup,
			ShadowMargin:   *learnShadowMargin,
			CooldownSec:    *learnCooldown,
			BufferCap:      *learnBuffer,
			Epochs:         *learnEpochs,
		}
	}
	var injector *faults.Injector
	if *faultSpec != "" {
		spec, err := faults.ParseSpec(*faultSpec)
		if err != nil {
			fail("%v", err)
		}
		injector = faults.NewInjector(spec, *faultSeed)
	}

	var sys *adrias.System
	var err error
	if *modelsDir != "" {
		sys = adrias.NewSystem(adrias.FastOptions())
		if err := sys.LoadModels(*modelsDir); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("loaded models from %s\n", *modelsDir)
	} else {
		fmt.Println("no -models dir given; training fast models (≈10 s)...")
		start := time.Now()
		sys, err = adrias.Train(adrias.FastOptions())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("trained in %.1fs\n", time.Since(start).Seconds())
	}

	// Every decision and monitoring sample is published on an in-process
	// bus; -bus-addr additionally serves it over TCP for live subscribers.
	events := bus.New()
	var eventLogW *os.File
	if *eventLog != "" {
		f, err := os.OpenFile(*eventLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fail("-event-log: %v", err)
		}
		eventLogW = f
		defer f.Close()
	}
	var sinkW io.Writer
	if eventLogW != nil {
		sinkW = eventLogW
	}
	sink := obs.NewEventSink(1024, *eventSample, sinkW)
	eng := serve.NewSystemEngine(sys.Pred, sys.Watch, sys.Registry, serve.EngineConfig{
		Beta:        *beta,
		QoSFactor:   *qosFactor,
		AmbientRate: *ambient,
		Seed:        *seed,
		Nodes:       *rackNodes,
		Bus:         events,
		Events:      sink,
		Faults:      injector,
		Breaker: faults.BreakerConfig{
			Threshold: *breakerThreshold,
			Cooldown:  *breakerCooldown,
		},
		DisableBreaker: *noBreaker,
		Quantized:      *quantized,
		Learn:          learnCfg,
		AmbientRampTo:  *ambientRampTo,
		AmbientRampSec: *ambientRampSec,
	})
	if learnCfg != nil {
		fmt.Println("online learning loop armed (drift-triggered retrain, shadow eval, hot swap)")
	}
	svc := serve.NewService(eng, serve.Config{
		BatchWindow:    *batchWindow,
		MaxBatch:       *maxBatch,
		QueueDepth:     *queueDepth,
		DefaultTimeout: *timeout,
		Replicas:       *replicas,
	})
	if *replicas > 1 || *rackNodes > 1 {
		fmt.Printf("scale-out placement: %d replica deciders over a %d-node rack\n", *replicas, *rackNodes)
		if learnCfg != nil {
			fmt.Println("generation-aware shards: replicas re-clone from promoted models within one batch")
		}
	}
	eng.RegisterMetrics(svc.Metrics())
	// One registry feeds /metrics: serve + runtime series are pre-registered
	// by the service; add the testbed fabric, the bus, and model inference.
	tel := svc.Telemetry()
	eng.RegisterObs(tel)
	slo, err := serve.BuildSLO(serve.SLOConfig{Spec: *sloSpec}, svc.Metrics(), eng)
	if err != nil {
		fail("%v", err)
	}
	eng.AttachSLO(slo)
	tel.AttachSLO(slo)
	tel.AttachEvents(sink)
	events.RegisterMetrics(tel.Registry)
	models.RegisterMetrics(tel.Registry)
	if injector != nil {
		injector.RegisterMetrics(tel.Registry)
		fmt.Printf("chaos mode: fault schedule %q armed (seed %d)\n", *faultSpec, *faultSeed)
	}

	if *busAddr != "" {
		busSrv, err := bus.NewServer(events, *busAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer busSrv.Close()
		fmt.Printf("event bus on tcp://%s (topics orchestrator.decisions, watcher.samples, model.generations, cluster.view, obs.alerts)\n", busSrv.Addr())
	}
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		go func() {
			if err := http.Serve(dln, profiling.DebugHandler()); err != nil && !errors.Is(err, net.ErrClosed) {
				fmt.Fprintf(os.Stderr, "debug listener: %v\n", err)
			}
		}()
		defer dln.Close()
		fmt.Printf("pprof on http://%s/debug/pprof/\n", dln.Addr())
	}

	httpSrv := &http.Server{Addr: *listen, Handler: serve.NewHandler(svc, eng)}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("placement service on http://%s (POST /v1/place, /healthz, /metrics, /debug/traces, /debug/decisions, /debug/slo, /debug/events)\n",
		ln.Addr())
	if eventLogW != nil {
		fmt.Printf("wide-event log appending to %s (1 in %d sampled)\n", *eventLog, *eventSample)
	}

	// Advance the testbed against the wall clock until shutdown.
	tickerDone := make(chan struct{})
	tickerStop := make(chan struct{})
	go func() {
		defer close(tickerDone)
		t := time.NewTicker(*tick)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				eng.Advance(*simPerTick)
			case <-tickerStop:
				return
			}
		}
	}()

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		fmt.Printf("\n%s: draining (budget %s)...\n", sig, *drain)
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Stop intake first so queued requests are decided, then close listeners.
	if err := svc.Close(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "drain: %v\n", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "shutdown: %v\n", err)
	}
	close(tickerStop)
	<-tickerDone

	m := svc.Metrics()
	s := eng.Snapshot()
	fmt.Printf("served %d ok / %d error (%d local, %d remote, %d cold starts); sim time %.0fs, %d completed\n",
		m.ReqOK.Load(), m.ReqError.Load(), m.PlacedLocal.Load(), m.PlacedRemote.Load(),
		m.ColdStarts.Load(), s.SimTime, s.Completed)
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
