// Command adrias-watch tails an adriasd bus over TCP, printing Watcher
// samples and Orchestrator decisions as they are published — the
// observer-side counterpart of the paper's ZeroMQ topology.
//
// The cluster.view topic (published by adrias-serve once per testbed tick)
// is rendered as a per-node occupancy line instead of raw JSON, with deltas
// against the previously seen view so rack rebalancing is visible at a
// glance:
//
//	[cluster.view] v=1042 t=310s | node0 run=7(+1) remote=504.0GB(-8.0) fab=12% | node1 ...
//
// Usage:
//
//	adrias-watch [-addr 127.0.0.1:7601]
//	             [-topics watcher.samples,orchestrator.decisions,model.generations,cluster.view]
//	             [-n max]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"

	"adrias/internal/bus"
	"adrias/internal/cluster"
)

// viewRenderer formats cluster.view payloads with per-node deltas against
// the last view it saw. Not safe for concurrent use; the caller serializes.
type viewRenderer struct {
	prev map[int]cluster.NodeOccupancy
}

func (r *viewRenderer) render(payload []byte) (string, bool) {
	var v cluster.View
	if err := json.Unmarshal(payload, &v); err != nil || len(v.Nodes) == 0 {
		return "", false
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "v=%d t=%.0fs", v.Version, v.Time)
	for _, o := range v.Nodes {
		fmt.Fprintf(&sb, " | node%d run=%d", o.Node, o.Running)
		if p, ok := r.prev[o.Node]; ok && o.Running != p.Running {
			fmt.Fprintf(&sb, "(%+d)", o.Running-p.Running)
		}
		fmt.Fprintf(&sb, " remote=%.1fGB", o.RemoteFreeGB)
		if p, ok := r.prev[o.Node]; ok && o.RemoteFreeGB != p.RemoteFreeGB {
			fmt.Fprintf(&sb, "(%+.1f)", o.RemoteFreeGB-p.RemoteFreeGB)
		}
		fmt.Fprintf(&sb, " fab=%.0f%%", o.FabricUtil*100)
		if o.FabricDegraded {
			sb.WriteString(" DEGRADED")
		}
	}
	if r.prev == nil {
		r.prev = make(map[int]cluster.NodeOccupancy, len(v.Nodes))
	}
	for _, o := range v.Nodes {
		r.prev[o.Node] = o
	}
	return sb.String(), true
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7601", "adriasd bus address")
	topics := flag.String("topics", "watcher.samples,orchestrator.decisions,model.generations,cluster.view", "comma-separated topics")
	max := flag.Int("n", 0, "exit after this many messages (0 = run until the bus closes)")
	flag.Parse()

	cli, err := bus.Dial(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer cli.Close()

	var mu sync.Mutex
	views := &viewRenderer{}
	count := 0
	done := make(chan struct{})
	var wg sync.WaitGroup
	for _, topic := range strings.Split(*topics, ",") {
		topic = strings.TrimSpace(topic)
		ch, err := cli.Subscribe(topic)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("subscribed to %s\n", topic)
		wg.Add(1)
		go func(topic string) {
			defer wg.Done()
			for m := range ch {
				mu.Lock()
				line := string(m.Payload)
				if topic == "cluster.view" {
					if rendered, ok := views.render(m.Payload); ok {
						line = rendered
					}
				}
				fmt.Printf("[%s] %s\n", m.Topic, line)
				count++
				if *max > 0 && count >= *max {
					mu.Unlock()
					select {
					case <-done:
					default:
						close(done)
					}
					return
				}
				mu.Unlock()
			}
		}(topic)
	}
	go func() {
		wg.Wait()
		select {
		case <-done:
		default:
			close(done)
		}
	}()
	<-done
}
