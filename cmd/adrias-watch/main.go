// Command adrias-watch tails an adriasd bus over TCP, printing Watcher
// samples and Orchestrator decisions as they are published — the
// observer-side counterpart of the paper's ZeroMQ topology.
//
// Usage:
//
//	adrias-watch [-addr 127.0.0.1:7601] [-topics watcher.samples,orchestrator.decisions,model.generations] [-n max]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"

	"adrias/internal/bus"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7601", "adriasd bus address")
	topics := flag.String("topics", "watcher.samples,orchestrator.decisions,model.generations", "comma-separated topics")
	max := flag.Int("n", 0, "exit after this many messages (0 = run until the bus closes)")
	flag.Parse()

	cli, err := bus.Dial(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer cli.Close()

	var mu sync.Mutex
	count := 0
	done := make(chan struct{})
	var wg sync.WaitGroup
	for _, topic := range strings.Split(*topics, ",") {
		topic = strings.TrimSpace(topic)
		ch, err := cli.Subscribe(topic)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("subscribed to %s\n", topic)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for m := range ch {
				mu.Lock()
				fmt.Printf("[%s] %s\n", m.Topic, string(m.Payload))
				count++
				if *max > 0 && count >= *max {
					mu.Unlock()
					select {
					case <-done:
					default:
						close(done)
					}
					return
				}
				mu.Unlock()
			}
		}()
	}
	go func() {
		wg.Wait()
		select {
		case <-done:
		default:
			close(done)
		}
	}()
	<-done
}
