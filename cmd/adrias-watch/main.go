// Command adrias-watch tails an adriasd bus over TCP, printing Watcher
// samples and Orchestrator decisions as they are published — the
// observer-side counterpart of the paper's ZeroMQ topology.
//
// The cluster.view topic (published by adrias-serve once per testbed tick)
// is rendered as a per-node occupancy line instead of raw JSON, with deltas
// against the previously seen view so rack rebalancing is visible at a
// glance:
//
//	[cluster.view] v=1042 t=310s | node0 run=7(+1) remote=504.0GB(-8.0) fab=12% | node1 ...
//
// The obs.alerts topic (SLO alert transitions) is rendered as a one-line
// paging event:
//
//	[obs.alerts] downgrade-rate ok→page fast=16.2x slow=1.4x budget=31% t=42s
//
// Usage:
//
//	adrias-watch [-addr 127.0.0.1:7601]
//	             [-topics watcher.samples,orchestrator.decisions,model.generations,cluster.view,obs.alerts]
//	             [-n max]
//	adrias-watch -once [-serve http://127.0.0.1:7700]
//
// -once skips the bus entirely: it fetches one frame of /debug/slo and the
// adrias_slo_* section of /metrics from the placement service, prints a
// snapshot, and exits (nonzero when the service is unreachable) — the
// scriptable counterpart of tailing obs.alerts.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"adrias/internal/bus"
	"adrias/internal/cluster"
	"adrias/internal/obs"
)

// viewRenderer formats cluster.view payloads with per-node deltas against
// the last view it saw. Not safe for concurrent use; the caller serializes.
type viewRenderer struct {
	prev map[int]cluster.NodeOccupancy
}

func (r *viewRenderer) render(payload []byte) (string, bool) {
	var v cluster.View
	if err := json.Unmarshal(payload, &v); err != nil || len(v.Nodes) == 0 {
		return "", false
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "v=%d t=%.0fs", v.Version, v.Time)
	for _, o := range v.Nodes {
		fmt.Fprintf(&sb, " | node%d run=%d", o.Node, o.Running)
		if p, ok := r.prev[o.Node]; ok && o.Running != p.Running {
			fmt.Fprintf(&sb, "(%+d)", o.Running-p.Running)
		}
		fmt.Fprintf(&sb, " remote=%.1fGB", o.RemoteFreeGB)
		if p, ok := r.prev[o.Node]; ok && o.RemoteFreeGB != p.RemoteFreeGB {
			fmt.Fprintf(&sb, "(%+.1f)", o.RemoteFreeGB-p.RemoteFreeGB)
		}
		fmt.Fprintf(&sb, " fab=%.0f%%", o.FabricUtil*100)
		if o.FabricDegraded {
			sb.WriteString(" DEGRADED")
		}
	}
	if r.prev == nil {
		r.prev = make(map[int]cluster.NodeOccupancy, len(v.Nodes))
	}
	for _, o := range v.Nodes {
		r.prev[o.Node] = o
	}
	return sb.String(), true
}

// renderAlert formats obs.alerts payloads (SLO alert transitions).
func renderAlert(payload []byte) (string, bool) {
	var tr obs.SLOTransition
	if err := json.Unmarshal(payload, &tr); err != nil || tr.Objective == "" {
		return "", false
	}
	return fmt.Sprintf("%s %s→%s fast=%.1fx slow=%.1fx budget=%.0f%% t=%.0fs",
		tr.Objective, tr.From, tr.To, tr.FastBurn, tr.SlowBurn, tr.BudgetRem*100, tr.SimTime), true
}

// sloFrame is the subset of the /debug/slo payload -once renders.
type sloFrame struct {
	SimTime    float64                  `json:"sim_time_s"`
	Evals      uint64                   `json:"evaluations"`
	Overall    string                   `json:"overall"`
	Objectives []obs.SLOObjectiveStatus `json:"objectives"`
}

// snapshotOnce prints one frame of /debug/slo plus the adrias_slo_* metric
// section and returns an exit code: the scriptable -once mode.
func snapshotOnce(serveURL string) int {
	cli := &http.Client{Timeout: 5 * time.Second}
	base := strings.TrimSuffix(serveURL, "/")

	resp, err := cli.Get(base + "/debug/slo")
	if err != nil {
		fmt.Fprintf(os.Stderr, "adrias-watch: %v\n", err)
		return 1
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "adrias-watch: GET /debug/slo: %s\n", resp.Status)
		return 1
	}
	var frame sloFrame
	if err := json.NewDecoder(resp.Body).Decode(&frame); err != nil {
		fmt.Fprintf(os.Stderr, "adrias-watch: decoding /debug/slo: %v\n", err)
		return 1
	}
	fmt.Printf("slo overall=%s t=%.0fs evaluations=%d\n", frame.Overall, frame.SimTime, frame.Evals)
	for _, o := range frame.Objectives {
		fmt.Printf("  %-22s %-4s budget=%.2g%% remaining=%.0f%% fast=%.2fx/%.2fx slow=%.2fx/%.2fx bad=%.0f/%.0f\n",
			o.Name, o.State, o.Budget*100, o.BudgetRemaining*100,
			o.BurnFastShort, o.BurnFastLong, o.BurnSlowShort, o.BurnSlowLong, o.Bad, o.Total)
	}

	mresp, err := cli.Get(base + "/metrics")
	if err != nil {
		fmt.Fprintf(os.Stderr, "adrias-watch: %v\n", err)
		return 1
	}
	defer mresp.Body.Close()
	fmt.Println("metrics (adrias_slo_*):")
	sc := bufio.NewScanner(mresp.Body)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "adrias_slo_") {
			fmt.Println("  " + line)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "adrias-watch: reading /metrics: %v\n", err)
		return 1
	}
	return 0
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7601", "adriasd bus address")
	topics := flag.String("topics", "watcher.samples,orchestrator.decisions,model.generations,cluster.view,obs.alerts", "comma-separated topics")
	max := flag.Int("n", 0, "exit after this many messages (0 = run until the bus closes)")
	once := flag.Bool("once", false, "print one snapshot of /debug/slo + adrias_slo_* metrics from -serve, then exit")
	serveURL := flag.String("serve", "http://127.0.0.1:7700", "placement-service base URL for -once")
	flag.Parse()

	if *once {
		os.Exit(snapshotOnce(*serveURL))
	}

	cli, err := bus.Dial(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer cli.Close()

	var mu sync.Mutex
	views := &viewRenderer{}
	count := 0
	done := make(chan struct{})
	var wg sync.WaitGroup
	for _, topic := range strings.Split(*topics, ",") {
		topic = strings.TrimSpace(topic)
		ch, err := cli.Subscribe(topic)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("subscribed to %s\n", topic)
		wg.Add(1)
		go func(topic string) {
			defer wg.Done()
			for m := range ch {
				mu.Lock()
				line := string(m.Payload)
				switch topic {
				case "cluster.view":
					if rendered, ok := views.render(m.Payload); ok {
						line = rendered
					}
				case "obs.alerts":
					if rendered, ok := renderAlert(m.Payload); ok {
						line = rendered
					}
				}
				fmt.Printf("[%s] %s\n", m.Topic, line)
				count++
				if *max > 0 && count >= *max {
					mu.Unlock()
					select {
					case <-done:
					default:
						close(done)
					}
					return
				}
				mu.Unlock()
			}
		}(topic)
	}
	go func() {
		wg.Wait()
		select {
		case <-done:
		default:
			close(done)
		}
	}()
	<-done
}
