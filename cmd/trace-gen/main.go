// Command trace-gen runs randomized deployment scenarios on the simulated
// disaggregated testbed and writes their traces (completed runs plus the
// per-tick monitoring series) as JSON — the raw material of the paper's
// offline phase, in an inspectable form.
//
// Usage:
//
//	trace-gen [-n scenarios] [-dur seconds] [-min s] [-max s] [-seed n] [-out file]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"adrias/internal/scenario"
	"adrias/internal/workload"
)

// traceFile is the JSON schema written by trace-gen.
type traceFile struct {
	Scenarios []scenarioDump `json:"scenarios"`
}

type scenarioDump struct {
	Seed          int64             `json:"seed"`
	SpawnMin      float64           `json:"spawn_min"`
	SpawnMax      float64           `json:"spawn_max"`
	MaxConcurrent int               `json:"max_concurrent"`
	FabricBytes   float64           `json:"fabric_bytes"`
	Runs          []scenario.AppRun `json:"runs"`
	Metrics       [][]float64       `json:"metrics"` // per tick, 7 events
}

func main() {
	n := flag.Int("n", 4, "number of scenarios")
	dur := flag.Float64("dur", 900, "arrival window per scenario, seconds")
	min := flag.Float64("min", 5, "minimum spawn interval, seconds")
	max := flag.Float64("max", 40, "maximum spawn interval, seconds")
	seed := flag.Int64("seed", 1, "base seed")
	out := flag.String("out", "traces.json", "output file")
	flag.Parse()

	reg := workload.NewRegistry()
	var dump traceFile
	for i := 0; i < *n; i++ {
		cfg := scenario.Config{
			Seed:        *seed + int64(i),
			DurationSec: *dur,
			SpawnMin:    *min,
			SpawnMax:    *max,
			IBenchShare: 0.35,
			KeepHistory: true,
		}
		res, err := scenario.Run(cfg, reg, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		sd := scenarioDump{
			Seed:          cfg.Seed,
			SpawnMin:      cfg.SpawnMin,
			SpawnMax:      cfg.SpawnMax,
			MaxConcurrent: res.MaxConcurrent,
			FabricBytes:   res.FabricBytes,
			Runs:          res.Runs,
		}
		for _, rec := range res.History {
			sd.Metrics = append(sd.Metrics, rec.Sample.Vector())
		}
		dump.Scenarios = append(dump.Scenarios, sd)
		fmt.Printf("scenario %d: %d runs, %d ticks, max %d concurrent\n",
			cfg.Seed, len(res.Runs), len(sd.Metrics), res.MaxConcurrent)
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	if err := enc.Encode(dump); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}
