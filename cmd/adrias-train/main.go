// Command adrias-train runs the offline phase — interference-aware trace
// collection, signature capture, and training of the system-state and
// performance models — and persists the result for adriasd or library
// users.
//
// Usage:
//
//	adrias-train [-scale fast|paper] [-out dir] [-eval]
//	             [-cpuprofile file] [-memprofile file]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"adrias"
	"adrias/internal/profiling"
)

func main() {
	os.Exit(run())
}

// run carries the whole command body so deferred profile teardown executes
// on every exit path before the process terminates.
func run() int {
	scaleFlag := flag.String("scale", "fast", "training scale: fast or paper")
	outFlag := flag.String("out", "models", "output directory for model files")
	evalFlag := flag.Bool("eval", true, "print held-out accuracy after training")
	cpuprofileFlag := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofileFlag := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	stopProf, err := profiling.Start(*cpuprofileFlag, *memprofileFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer stopProf()

	var opts adrias.Options
	switch *scaleFlag {
	case "fast":
		opts = adrias.FastOptions()
	case "paper":
		opts = adrias.PaperOptions()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleFlag)
		return 2
	}

	start := time.Now()
	fmt.Printf("running offline phase (%s scale: %d scenarios)...\n",
		*scaleFlag, len(opts.Corpus.Configs()))
	sys, err := adrias.Train(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("trained in %.1fs: %d windows, %d signatures\n",
		time.Since(start).Seconds(), len(sys.Windows), len(sys.Pred.Sigs.Names()))

	if *evalFlag {
		ev := sys.Pred.Sys.Evaluate(sys.Windows, sys.TestIdx)
		fmt.Printf("system-state model held-out R²: %.4f (per-metric %v)\n",
			ev.R2Avg, ev.R2PerMetric)
	}

	if err := sys.SaveModels(*outFlag); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("models written to %s/\n", *outFlag)
	return 0
}
