// Command adriasd is the orchestrator daemon demo: it trains (or loads) the
// Adrias models, runs a live randomized scenario on the simulated
// disaggregated testbed, and publishes the Watcher's per-tick samples and
// the Orchestrator's placement decisions on a TCP message bus — the
// deployment topology of the paper's Fig. 7, with the bus standing in for
// ZeroMQ. Connect any number of bus clients to observe the system.
//
// Usage:
//
//	adriasd [-models dir] [-beta 0.8] [-dur 600] [-listen 127.0.0.1:7601] [-quiet]
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"adrias"
	"adrias/internal/bus"
	"adrias/internal/cluster"
	"adrias/internal/memsys"
	"adrias/internal/workload"
)

type samplePayload struct {
	Time    float64   `json:"time"`
	Metrics []float64 `json:"metrics"`
	Running int       `json:"running"`
}

type decisionPayload struct {
	App       string  `json:"app"`
	Class     string  `json:"class"`
	Tier      string  `json:"tier"`
	PredLocal float64 `json:"pred_local,omitempty"`
	PredRem   float64 `json:"pred_remote,omitempty"`
	ColdStart bool    `json:"cold_start,omitempty"`
}

func main() {
	modelsDir := flag.String("models", "", "directory of pre-trained models (empty: train fast models now)")
	beta := flag.Float64("beta", 0.8, "BE slack parameter β")
	dur := flag.Float64("dur", 600, "scenario arrival window, simulated seconds")
	listen := flag.String("listen", "127.0.0.1:7601", "bus listen address")
	quiet := flag.Bool("quiet", false, "suppress per-decision output")
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "adriasd: "+format+"\n", args...)
		os.Exit(2)
	}
	if *beta <= 0 {
		fail("-beta must be > 0 (got %v)", *beta)
	}
	if *dur <= 0 {
		fail("-dur must be > 0 simulated seconds (got %v)", *dur)
	}
	if _, _, err := net.SplitHostPort(*listen); err != nil {
		fail("invalid -listen address %q: %v", *listen, err)
	}

	var sys *adrias.System
	var err error
	if *modelsDir != "" {
		sys = adrias.NewSystem(adrias.FastOptions())
		if err := sys.LoadModels(*modelsDir); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("loaded models from %s\n", *modelsDir)
	} else {
		fmt.Println("no -models dir given; training fast models (≈10 s)...")
		sys, err = adrias.Train(adrias.FastOptions())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	b := bus.New()
	srv, err := bus.NewServer(b, *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer srv.Close()
	defer b.Close()
	fmt.Printf("bus serving on %s (topics: watcher.samples, orchestrator.decisions)\n", srv.Addr())

	// SIGINT/SIGTERM: shut the bus down cleanly (clients see closed
	// connections, not resets) before exiting mid-scenario.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		sig := <-sigCh
		fmt.Fprintf(os.Stderr, "\nadriasd: %s: closing bus and exiting\n", sig)
		srv.Close()
		b.Close()
		os.Exit(130)
	}()

	orch := sys.Orchestrator(*beta)
	// Loose QoS targets derived from the LC profiles' unloaded latency.
	for _, p := range sys.Registry.LC() {
		orch.QoSMs[p.Name] = p.BaseP50Ms * 20
	}

	cfg := adrias.ScenarioConfig{
		Seed:        time.Now().UnixNano()%100000 + 1,
		DurationSec: *dur,
		SpawnMin:    5,
		SpawnMax:    25,
		IBenchShare: 0.3,
		KeepHistory: true,
		OnComplete: func(in *workload.Instance, c *cluster.Cluster) {
			orch.OnComplete(in, c)
		},
	}

	decided := 0
	sched := adrias.WithRandomInterference(
		publishingScheduler{orch: orch, bus: b, quiet: *quiet, decided: &decided}, cfg.Seed)
	start := time.Now()
	res, err := sys.RunScenario(cfg, sched)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// Publish the recorded monitoring trace (live consumers already missed
	// the simulation, which runs faster than wall clock — this is a replay
	// for any attached client).
	for _, rec := range res.History {
		b.Publish("watcher.samples", samplePayload{
			Time: rec.Time, Metrics: rec.Sample.Vector(), Running: rec.Running,
		})
	}

	stats := orch.Stats()
	fmt.Printf("\nscenario complete in %.1fs wall: %d runs, %d decisions, %d offloaded (%d cold starts)\n",
		time.Since(start).Seconds(), len(res.Runs), stats.Total, stats.Remote, stats.Cold)
	fmt.Printf("fabric traffic: %.2f GB\n", res.FabricBytes/1e9)
}

// publishingScheduler wraps the orchestrator, publishing every decision on
// the bus.
type publishingScheduler struct {
	orch    *adrias.Orchestrator
	bus     *bus.Bus
	quiet   bool
	decided *int
}

func (p publishingScheduler) Name() string { return p.orch.Name() }

func (p publishingScheduler) Decide(prof *workload.Profile, c *cluster.Cluster) memsys.Tier {
	tier := p.orch.Decide(prof, c)
	d, _ := p.orch.LastDecision()
	payload := decisionPayload{
		App: d.App, Class: d.Class.String(), Tier: tier.String(),
		PredLocal: d.PredLocal, PredRem: d.PredRem, ColdStart: d.ColdStart,
	}
	p.bus.Publish("orchestrator.decisions", payload)
	*p.decided++
	if !p.quiet {
		if d.PredLocal > 0 {
			fmt.Printf("t=%6.0f  %-10s → %-6s (t̂_local %.1f, t̂_remote %.1f)\n",
				c.Now(), d.App, tier, d.PredLocal, d.PredRem)
		} else {
			fmt.Printf("t=%6.0f  %-10s → %-6s\n", c.Now(), d.App, tier)
		}
	}
	return tier
}
