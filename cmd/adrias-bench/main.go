// Command adrias-bench regenerates the paper's tables and figures on the
// simulated testbed and prints paper-vs-measured reports with shape checks.
//
// Usage:
//
//	adrias-bench [-scale fast|medium|paper] [-run id[,id...]] [-list]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"adrias/internal/experiments"
)

func main() {
	scaleFlag := flag.String("scale", "medium", "campaign scale: fast, medium, or paper")
	runFlag := flag.String("run", "", "comma-separated experiment ids (default: all)")
	listFlag := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *listFlag {
		for _, d := range experiments.All() {
			fmt.Printf("%-8s %s\n", d.ID, d.Title)
		}
		return
	}

	var scale experiments.Scale
	switch *scaleFlag {
	case "fast":
		scale = experiments.Fast()
	case "medium":
		scale = experiments.Medium()
	case "paper":
		scale = experiments.Paper()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}

	var ds []experiments.Descriptor
	if *runFlag == "" {
		ds = experiments.All()
	} else {
		for _, id := range strings.Split(*runFlag, ",") {
			d, err := experiments.ByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			ds = append(ds, d)
		}
	}

	suite := experiments.NewSuite(scale)
	failed := 0
	for _, d := range ds {
		start := time.Now()
		rep, err := d.Run(suite)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", d.ID, err)
			failed++
			continue
		}
		fmt.Print(rep.Render())
		fmt.Printf("  (%s, %.1fs)\n\n", scale.Name, time.Since(start).Seconds())
		if !rep.Passed() {
			failed++
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "%d experiment(s) with failed checks\n", failed)
		os.Exit(1)
	}
}
