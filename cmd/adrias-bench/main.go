// Command adrias-bench regenerates the paper's tables and figures on the
// simulated testbed and prints paper-vs-measured reports with shape checks.
// With -target it instead load-tests a running adrias-serve instance and
// reports latency percentiles, status counts, and the placement mix.
//
// Usage:
//
//	adrias-bench [-scale fast|medium|paper] [-run id[,id...]] [-list]
//	             [-quant] [-cpuprofile file] [-memprofile file]
//	adrias-bench -target http://127.0.0.1:7700 [-n 200] [-conc 8]
//	             [-rate 0] [-apps gmm,redis,...] [-dry-run] [-deadline-ms 0]
//	             [-dump-decisions]
//	adrias-bench -target http://127.0.0.1:7700 -chaos [-chaos-duration 18s]
//	             [-assert-slo downgrade-rate] [-slo-grace 20s]
//
// -chaos switches the load generator into the chaos harness: sustained load
// for the whole duration against a server started with -fault-spec,
// asserting graceful degradation (every answer a valid placement, no 5xx,
// circuit breaker observed open and then recovered on /healthz).
// -assert-slo additionally requires the named SLO objective to page on
// /debug/slo during the fault schedule and to clear again within
// -slo-grace after the load stops — the scripted form of the paper's
// "alert fires, then resolves" operational check.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"adrias/internal/experiments"
	"adrias/internal/profiling"
)

func main() {
	os.Exit(run())
}

// run carries the whole command body so deferred profile teardown executes
// on every exit path — load-generator result, unknown scale/id, and failed
// experiment checks all return codes instead of calling os.Exit.
func run() int {
	scaleFlag := flag.String("scale", "medium", "campaign scale: fast, medium, or paper")
	runFlag := flag.String("run", "", "comma-separated experiment ids (default: all)")
	quantFlag := flag.Bool("quant", false, "run the int8 quantization contract suite (alias for -run quantflip; prints a machine-parsable decision_flip_rate line)")
	listFlag := flag.Bool("list", false, "list experiment ids and exit")
	targetFlag := flag.String("target", "", "adrias-serve base URL; when set, run the load generator instead of experiments")
	nFlag := flag.Int("n", 200, "load generator: total requests")
	concFlag := flag.Int("conc", 8, "load generator: concurrent workers")
	rateFlag := flag.Float64("rate", 0, "load generator: target arrival rate, req/s (0: closed loop)")
	appsFlag := flag.String("apps", "gmm,pagerank,redis,kmeans,wordcount", "load generator: comma-separated application mix")
	dryRunFlag := flag.Bool("dry-run", true, "load generator: decide without deploying on the testbed")
	deadlineFlag := flag.Float64("deadline-ms", 0, "load generator: per-request deadline, ms (0: server default)")
	dumpDecisionsFlag := flag.Bool("dump-decisions", false, "load generator: print the server's /debug/decisions audit log after the run")
	chaosFlag := flag.Bool("chaos", false, "chaos harness: sustained load asserting graceful degradation (requires -target)")
	chaosDurFlag := flag.Duration("chaos-duration", 18*time.Second, "chaos harness: load duration (must cover the server's fault schedule plus recovery)")
	assertSLOFlag := flag.String("assert-slo", "", "chaos harness: SLO objective that must page during the faults and clear afterwards (needs -chaos)")
	sloGraceFlag := flag.Duration("slo-grace", 20*time.Second, "chaos harness: how long to wait after load for the asserted SLO alert to clear")
	cpuprofileFlag := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofileFlag := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	stopProf, err := profiling.Start(*cpuprofileFlag, *memprofileFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer stopProf()

	if *chaosFlag && *targetFlag == "" {
		fmt.Fprintln(os.Stderr, "-chaos requires -target")
		return 2
	}
	if *targetFlag != "" {
		var apps []string
		for _, a := range strings.Split(*appsFlag, ",") {
			if a = strings.TrimSpace(a); a != "" {
				apps = append(apps, a)
			}
		}
		if *chaosFlag {
			return runChaos(chaosOpts{
				target: *targetFlag, duration: *chaosDurFlag,
				conc: *concFlag, apps: apps,
				assertSLO: *assertSLOFlag, sloGrace: *sloGraceFlag,
			})
		}
		return runLoadGen(loadGenOpts{
			target: *targetFlag, n: *nFlag, conc: *concFlag, rate: *rateFlag,
			apps: apps, dryRun: *dryRunFlag, deadlineMs: *deadlineFlag,
			dumpDecisions: *dumpDecisionsFlag,
		})
	}

	if *listFlag {
		for _, d := range experiments.All() {
			fmt.Printf("%-8s %s\n", d.ID, d.Title)
		}
		return 0
	}

	var scale experiments.Scale
	switch *scaleFlag {
	case "fast":
		scale = experiments.Fast()
	case "medium":
		scale = experiments.Medium()
	case "paper":
		scale = experiments.Paper()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleFlag)
		return 2
	}

	var ds []experiments.Descriptor
	if *quantFlag {
		if *runFlag != "" {
			*runFlag += ",quantflip"
		} else {
			*runFlag = "quantflip"
		}
	}
	if *runFlag == "" {
		ds = experiments.All()
	} else {
		for _, id := range strings.Split(*runFlag, ",") {
			d, err := experiments.ByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 2
			}
			ds = append(ds, d)
		}
	}

	suite := experiments.NewSuite(scale)
	failed := 0
	for _, d := range ds {
		start := time.Now()
		rep, err := d.Run(suite)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", d.ID, err)
			failed++
			continue
		}
		fmt.Print(rep.Render())
		fmt.Printf("  (%s, %.1fs)\n\n", scale.Name, time.Since(start).Seconds())
		if !rep.Passed() {
			failed++
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "%d experiment(s) with failed checks\n", failed)
		return 1
	}
	return 0
}
