package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"
)

// chaosOpts configures the chaos harness (-chaos with -target): sustained
// load against an adrias-serve instance running with an armed fault
// schedule, verifying graceful degradation rather than raw latency.
type chaosOpts struct {
	target   string
	duration time.Duration
	conc     int
	apps     []string
	// assertSLO names an SLO objective that must page during the fault
	// schedule and clear again afterwards (empty: no SLO assertion). The
	// harness polls /debug/slo alongside /healthz and, after the load
	// window, waits up to sloGrace for the alert to clear.
	assertSLO string
	sloGrace  time.Duration
}

// chaosStats aggregates the harness's observations across workers and the
// health monitor.
type chaosStats struct {
	mu          sync.Mutex
	requests    int
	status      map[int]int
	transport   int
	invalidTier int            // 200s whose tier is neither local nor remote
	reasons     map[string]int // decision reasons seen on 200s
	breakerSeen map[string]int // breaker states observed on /healthz
	sawDegraded bool
	recovered   bool           // healthy (breaker closed) observed after an open
	sloStates   map[string]int // alert states observed for the asserted objective
	sloPaged    bool           // objective reached "page" at some point
	sloFinal    string         // objective state at the last /debug/slo poll
}

// runChaos drives sustained load at a chaos-mode server for the configured
// duration and asserts the graceful-degradation contract: every answered
// request carries a valid placement, nothing panics or 5xxes, the circuit
// breaker is observed open under the injected faults and closed again after
// them. Returns a process exit code.
func runChaos(o chaosOpts) int {
	if o.conc <= 0 || len(o.apps) == 0 || o.duration <= 0 {
		fmt.Fprintln(os.Stderr, "chaos: -conc and -chaos-duration must be > 0 and -apps non-empty")
		return 2
	}
	base := strings.TrimSuffix(o.target, "/")
	client := &http.Client{Timeout: 30 * time.Second}
	st := &chaosStats{
		status:      map[int]int{},
		reasons:     map[string]int{},
		breakerSeen: map[string]int{},
		sloStates:   map[string]int{},
	}
	deadline := time.Now().Add(o.duration)

	// pollSLO samples /debug/slo once, recording the asserted objective's
	// alert state. Returns that state ("" when unreachable or unknown).
	pollSLO := func() string {
		if o.assertSLO == "" {
			return ""
		}
		resp, err := client.Get(base + "/debug/slo")
		if err != nil {
			return ""
		}
		defer resp.Body.Close()
		var frame struct {
			Objectives []struct {
				Name  string `json:"name"`
				State string `json:"state"`
			} `json:"objectives"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&frame); err != nil {
			io.Copy(io.Discard, resp.Body)
			return ""
		}
		io.Copy(io.Discard, resp.Body)
		for _, obj := range frame.Objectives {
			if obj.Name == o.assertSLO {
				st.mu.Lock()
				st.sloStates[obj.State]++
				if obj.State == "page" {
					st.sloPaged = true
				}
				st.sloFinal = obj.State
				st.mu.Unlock()
				return obj.State
			}
		}
		return ""
	}

	// The health monitor watches the breaker ride through the fault
	// schedule: open (or half-open) at some point, closed again afterwards.
	monDone := make(chan struct{})
	go func() {
		defer close(monDone)
		var wasOpen bool
		for time.Now().Before(deadline) {
			var h struct {
				Status  string `json:"status"`
				Breaker string `json:"breaker"`
			}
			if resp, err := client.Get(base + "/healthz"); err == nil {
				json.NewDecoder(resp.Body).Decode(&h)
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				st.mu.Lock()
				if h.Breaker != "" {
					st.breakerSeen[h.Breaker]++
				}
				if h.Status == "degraded" {
					st.sawDegraded = true
				}
				switch h.Breaker {
				case "open", "half-open":
					wasOpen = true
				case "closed":
					if wasOpen {
						st.recovered = true
					}
				}
				st.mu.Unlock()
			}
			pollSLO()
			time.Sleep(250 * time.Millisecond)
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < o.conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; time.Now().Before(deadline); i++ {
				app := o.apps[(w+i)%len(o.apps)]
				body, _ := json.Marshal(map[string]any{"app": app, "dry_run": true})
				resp, err := client.Post(base+"/v1/place", "application/json", bytes.NewReader(body))
				if err != nil {
					st.mu.Lock()
					st.transport++
					st.requests++
					st.mu.Unlock()
					continue
				}
				var out struct {
					Tier   string `json:"tier"`
					Reason string `json:"reason"`
				}
				json.NewDecoder(resp.Body).Decode(&out)
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				st.mu.Lock()
				st.requests++
				st.status[resp.StatusCode]++
				if resp.StatusCode == http.StatusOK {
					if out.Tier != "local" && out.Tier != "remote" {
						st.invalidTier++
					}
					reason := out.Reason
					if reason == "" {
						reason = "(none)"
					}
					st.reasons[reason]++
				}
				st.mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	<-monDone

	// With the fault schedule over and load stopped, give the fast window
	// time to drain so a tripped alert can clear before the verdict.
	if o.assertSLO != "" {
		grace := o.sloGrace
		if grace <= 0 {
			grace = 20 * time.Second
		}
		graceEnd := time.Now().Add(grace)
		for {
			state := pollSLO()
			st.mu.Lock()
			paged := st.sloPaged
			st.mu.Unlock()
			if (paged && state != "" && state != "page") || time.Now().After(graceEnd) {
				break
			}
			time.Sleep(500 * time.Millisecond)
		}
	}

	st.mu.Lock()
	defer st.mu.Unlock()
	fmt.Printf("chaos: %d requests over %s → %s\n", st.requests, o.duration, base)
	codes := make([]int, 0, len(st.status))
	for c := range st.status {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	fmt.Printf("status:")
	for _, c := range codes {
		fmt.Printf("  %d×%d", c, st.status[c])
	}
	if st.transport > 0 {
		fmt.Printf("  transport-error×%d", st.transport)
	}
	fmt.Println()
	reasons := make([]string, 0, len(st.reasons))
	for r := range st.reasons {
		reasons = append(reasons, r)
	}
	sort.Strings(reasons)
	fmt.Printf("decision reasons:")
	for _, r := range reasons {
		fmt.Printf("  %s×%d", r, st.reasons[r])
	}
	fmt.Println()
	fmt.Printf("breaker states observed on /healthz: %v (degraded seen: %v)\n",
		st.breakerSeen, st.sawDegraded)
	if o.assertSLO != "" {
		fmt.Printf("slo %q states observed on /debug/slo: %v (final: %q)\n",
			o.assertSLO, st.sloStates, st.sloFinal)
	}

	// The graceful-degradation contract.
	failed := 0
	check := func(ok bool, format string, args ...any) {
		if !ok {
			fmt.Fprintf(os.Stderr, "chaos FAIL: "+format+"\n", args...)
			failed++
		}
	}
	bad := st.transport
	for c, n := range st.status {
		if c >= 500 {
			bad += n
		}
	}
	check(st.requests > 0, "no requests completed")
	check(bad == 0, "%d request(s) hit a 5xx or transport error — degradation was not graceful", bad)
	check(st.invalidTier == 0, "%d answered request(s) carried no valid placement tier", st.invalidTier)
	check(st.sawDegraded, "service never reported degraded on /healthz despite the fault schedule")
	check(st.breakerSeen["open"] > 0, "breaker never observed open on /healthz")
	check(st.recovered, "breaker never observed closed again after opening — no recovery")
	if o.assertSLO != "" {
		check(len(st.sloStates) > 0, "objective %q never observed on /debug/slo", o.assertSLO)
		check(st.sloPaged, "objective %q never paged despite the fault schedule", o.assertSLO)
		check(st.sloFinal != "page", "objective %q still paging after recovery (final state %q)",
			o.assertSLO, st.sloFinal)
	}
	if failed > 0 {
		return 1
	}
	if o.assertSLO != "" {
		fmt.Printf("chaos: degradation graceful, breaker tripped and recovered, %q paged and cleared\n", o.assertSLO)
	} else {
		fmt.Println("chaos: degradation graceful, breaker tripped and recovered")
	}
	return 0
}
