package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"
)

// loadGenOpts configures the adrias-serve load generator (-target mode).
type loadGenOpts struct {
	target        string
	n             int
	conc          int
	rate          float64 // requests/s across all workers; 0 = closed loop
	apps          []string
	dryRun        bool
	deadlineMs    float64
	dumpDecisions bool // fetch /debug/decisions after the run
}

type loadGenStats struct {
	mu        sync.Mutex
	latencies []time.Duration
	status    map[int]int
	tiers     map[string]int
	nodeTiers map[string]int // "node0 remote" → count; keyed per rack node
	transport int            // requests that never got an HTTP response
}

func (s *loadGenStats) record(lat time.Duration, code int, tier string, node int, transportErr bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if transportErr {
		s.transport++
		return
	}
	s.latencies = append(s.latencies, lat)
	s.status[code]++
	if tier != "" {
		s.tiers[tier]++
		s.nodeTiers[fmt.Sprintf("node%d %s", node, tier)]++
	}
}

// runLoadGen drives an adrias-serve instance and prints a latency /
// placement-mix report. Returns a process exit code (non-zero when any
// request failed at the transport level or returned a 5xx).
func runLoadGen(o loadGenOpts) int {
	if o.n <= 0 || o.conc <= 0 || len(o.apps) == 0 {
		fmt.Fprintln(os.Stderr, "load generator: -n, -conc must be > 0 and -apps non-empty")
		return 2
	}
	base := strings.TrimSuffix(o.target, "/")
	client := &http.Client{Timeout: 30 * time.Second}

	// Work tokens, optionally paced to the target arrival rate. With no
	// rate the generator is closed-loop: conc workers back to back.
	work := make(chan int, o.conc)
	go func() {
		defer close(work)
		var pace *time.Ticker
		if o.rate > 0 {
			pace = time.NewTicker(time.Duration(float64(time.Second) / o.rate))
			defer pace.Stop()
		}
		for i := 0; i < o.n; i++ {
			if pace != nil {
				<-pace.C
			}
			work <- i
		}
	}()

	stats := &loadGenStats{status: map[int]int{}, tiers: map[string]int{}, nodeTiers: map[string]int{}}
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < o.conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				app := o.apps[i%len(o.apps)]
				body, _ := json.Marshal(map[string]any{
					"app": app, "dry_run": o.dryRun, "deadline_ms": o.deadlineMs,
				})
				t0 := time.Now()
				resp, err := client.Post(base+"/v1/place", "application/json", bytes.NewReader(body))
				lat := time.Since(t0)
				if err != nil {
					stats.record(0, 0, "", 0, true)
					continue
				}
				var out struct {
					Tier string `json:"tier"`
					Node int    `json:"node"`
				}
				_ = json.NewDecoder(resp.Body).Decode(&out)
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				tier := ""
				if resp.StatusCode == http.StatusOK {
					tier = out.Tier
				}
				stats.record(lat, resp.StatusCode, tier, out.Node, false)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	fmt.Printf("load generator: %d requests, %d workers", o.n, o.conc)
	if o.rate > 0 {
		fmt.Printf(", target %.1f req/s", o.rate)
	}
	fmt.Printf(" → %s\n", base)

	sort.Slice(stats.latencies, func(i, j int) bool { return stats.latencies[i] < stats.latencies[j] })
	if len(stats.latencies) > 0 {
		q := func(p float64) time.Duration {
			i := int(p * float64(len(stats.latencies)-1))
			return stats.latencies[i]
		}
		fmt.Printf("latency: p50 %s  p90 %s  p99 %s  max %s\n",
			q(0.50).Round(time.Microsecond), q(0.90).Round(time.Microsecond),
			q(0.99).Round(time.Microsecond), stats.latencies[len(stats.latencies)-1].Round(time.Microsecond))
	}
	fmt.Printf("throughput: %.1f req/s (%.2fs elapsed)\n",
		float64(len(stats.latencies))/elapsed.Seconds(), elapsed.Seconds())

	codes := make([]int, 0, len(stats.status))
	for c := range stats.status {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	fmt.Printf("status:")
	for _, c := range codes {
		fmt.Printf("  %d×%d", c, stats.status[c])
	}
	if stats.transport > 0 {
		fmt.Printf("  transport-error×%d", stats.transport)
	}
	fmt.Println()
	fmt.Printf("placements: %d local, %d remote\n", stats.tiers["local"], stats.tiers["remote"])
	// Per-node mix: only worth a line when the rack has more than one node
	// (single-node responses all land on node0).
	if len(stats.nodeTiers) > 0 {
		keys := make([]string, 0, len(stats.nodeTiers))
		for k := range stats.nodeTiers {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Printf("per-node mix:")
		for _, k := range keys {
			fmt.Printf("  %s×%d", k, stats.nodeTiers[k])
		}
		fmt.Println()
	}

	bad := stats.transport
	for c, n := range stats.status {
		if c >= 500 {
			bad += n
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "%d request(s) failed\n", bad)
		return 1
	}
	if o.dumpDecisions {
		if err := dumpDecisions(client, base); err != nil {
			fmt.Fprintf(os.Stderr, "dump decisions: %v\n", err)
			return 1
		}
	}
	return 0
}

// dumpDecisions fetches the server's placement audit log and prints one
// line per retained decision — the operator's "why did this app land
// there?" read-out after a load run.
func dumpDecisions(client *http.Client, base string) error {
	resp, err := client.Get(base + "/debug/decisions")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /debug/decisions: %s", resp.Status)
	}
	var payload struct {
		Total     uint64 `json:"total_decisions"`
		Retained  int    `json:"retained"`
		Decisions []struct {
			TraceID     string  `json:"trace_id"`
			App         string  `json:"app"`
			Class       string  `json:"class"`
			Tier        string  `json:"tier"`
			Node        int     `json:"node"`
			PredLocalS  float64 `json:"pred_local_s"`
			PredRemoteS float64 `json:"pred_remote_s"`
			Beta        float64 `json:"beta"`
			QoSMs       float64 `json:"qos_ms"`
			Reason      string  `json:"reason"`
			BatchSize   int     `json:"batch_size"`
			ModelGen    int     `json:"model_gen"`
			Event       string  `json:"event"`
		} `json:"decisions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		return err
	}
	fmt.Printf("\ndecision audit log: %d total, %d retained\n", payload.Total, payload.Retained)
	for _, d := range payload.Decisions {
		if d.Event == "model-swap" {
			// Lifecycle marker: the online learning loop promoted a retrained
			// candidate here — decisions below it came from the new generation.
			fmt.Printf("  ── model swap: %s model → generation %d (%d shadow evals) ──\n",
				d.Class, d.ModelGen, d.BatchSize)
			continue
		}
		target := d.Tier
		if d.Node > 0 {
			target = fmt.Sprintf("%s@n%d", d.Tier, d.Node)
		}
		fmt.Printf("  %-14s %-10s %-6s → %-9s %-13s", d.TraceID, d.App, d.Class, target, d.Reason)
		if d.PredLocalS > 0 || d.PredRemoteS > 0 {
			fmt.Printf("  t̂_local %.2f  t̂_remote %.2f  β %.2f", d.PredLocalS, d.PredRemoteS, d.Beta)
		}
		if d.QoSMs > 0 {
			fmt.Printf("  qos %.1fms", d.QoSMs)
		}
		if d.ModelGen > 1 {
			fmt.Printf("  gen %d", d.ModelGen)
		}
		fmt.Println()
	}
	return nil
}
