module adrias

go 1.22
