#!/usr/bin/env bash
# End-to-end smoke test of the online learning loop: start adrias-serve with
# the learning loop armed (-learn -quantized) and a drifting ambient-load
# program (-ambient-ramp-to shifts the interference mix after serving
# starts), drive sparse deployed placements through the adrias-bench load
# generator so their realized outcomes join back, and require:
#
#   - the drift detector trips and a retrain runs (adrias_learn_retrains_total ≥ 1),
#   - the shadow candidate is promoted (adrias_learn_swaps_total ≥ 1,
#     adrias_learn_model_generation ≥ 2),
#   - the candidate beat the live model on the shadowed admissions
#     (adrias_learn_last_shadow_err < adrias_learn_last_live_err),
#   - the re-derived int8 twin stays within the 1% decision-flip budget,
#   - the swap is audited (a "model-swap" record on /debug/decisions and the
#     generation marker in adrias-bench -dump-decisions),
#   - SIGTERM still drains cleanly afterward.
#
# Load calibration: the paper testbed saturates near 0.08 arrivals per
# simulated second — past it, instances pile up, almost nothing completes,
# and no outcomes ever join. The ramp (0.02 → 0.05) plus the served load
# (-rate 8 wall-req/s at 500 sim-s per wall-s ≈ 0.016/sim-s) stays under
# that knee while still shifting the mix enough to trip the detector.
# With ARTIFACT_DIR set, the /metrics and /debug/decisions scrapes are
# saved there for upload as a CI artifact.
set -euo pipefail

cd "$(dirname "$0")/.."
port="${PORT:-7744}"
tmp="$(mktemp -d)"
scrapes="${ARTIFACT_DIR:-$tmp/scrapes}"
mkdir -p "$scrapes"
pid=""
bench=""
cleanup() {
  [ -n "$bench" ] && kill "$bench" 2>/dev/null || true
  [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/adrias-serve" ./cmd/adrias-serve
go build -o "$tmp/adrias-bench" ./cmd/adrias-bench

# 500 simulated seconds per wall second; lifecycle thresholds scaled down so
# the full drift→retrain→shadow→swap round completes within the run. The
# shadow margin stays at its strict default (candidate must beat the live
# model outright), so a promotion implies the post-swap error improved —
# a losing candidate is discarded and the loop retries after the cooldown.
"$tmp/adrias-serve" -listen "127.0.0.1:$port" -tick 20ms -sim-per-tick 10 \
  -seed 11 -quantized -learn \
  -ambient 0.02 -ambient-ramp-to 0.05 -ambient-ramp-sec 2000 \
  -learn-drift-threshold 0.05 -learn-drift-window 64 \
  -learn-min-outcomes 16 -learn-shadow-warmup 10 \
  -learn-cooldown 30 -learn-epochs 4 \
  >"$tmp/serve.log" 2>&1 &
pid=$!

ready=""
for _ in $(seq 1 120); do
  if curl -fsS "http://127.0.0.1:$port/healthz" >/dev/null 2>&1; then
    ready=1
    break
  fi
  if ! kill -0 "$pid" 2>/dev/null; then
    echo "adrias-serve exited before becoming healthy:" >&2
    cat "$tmp/serve.log" >&2
    exit 1
  fi
  sleep 1
done
if [ -z "$ready" ]; then
  echo "adrias-serve did not become healthy in time:" >&2
  cat "$tmp/serve.log" >&2
  exit 1
fi

# Sparse DEPLOYED placements (not dry runs): each one completes on the
# testbed minutes of simulated time later and joins back as a training
# outcome. BE-only mix — the drifting ambient load is what moves their
# realized execution times.
"$tmp/adrias-bench" -target "http://127.0.0.1:$port" -n 2000 -conc 2 \
  -rate 8 -dry-run=false -apps gmm,pagerank,kmeans,wordcount \
  >"$scrapes/loadgen.txt" 2>&1 &
bench=$!

# Poll /metrics until the loop completes a full lifecycle round (swap
# observed), then stop the load.
swapped=""
for _ in $(seq 1 240); do
  curl -fsS "http://127.0.0.1:$port/metrics" >"$scrapes/metrics.txt" 2>/dev/null || true
  swaps="$(awk '/^adrias_learn_swaps_total /{print $2}' "$scrapes/metrics.txt")"
  if [ -n "$swaps" ] && [ "${swaps%.*}" -ge 1 ] 2>/dev/null; then
    swapped=1
    break
  fi
  if ! kill -0 "$pid" 2>/dev/null; then
    echo "adrias-serve died mid-run:" >&2
    cat "$tmp/serve.log" >&2
    exit 1
  fi
  sleep 0.5
done
kill "$bench" 2>/dev/null || true
wait "$bench" 2>/dev/null || true
bench=""
if [ -z "$swapped" ]; then
  echo "no model swap within the polling budget; learn metrics:" >&2
  grep '^adrias_learn' "$scrapes/metrics.txt" >&2 || true
  exit 1
fi

# The lifecycle must be visible end to end in /metrics: a retrain ran, the
# generation advanced, the shadow candidate beat the live model on the same
# admissions, and the re-derived int8 twin held the decision-flip budget.
awk '
/^adrias_learn_retrains_total /     { retrains = $2 }
/^adrias_learn_model_generation /   { gen = $2 }
/^adrias_learn_last_live_err /      { live = $2 }
/^adrias_learn_last_shadow_err /    { shadow = $2 }
/^adrias_learn_last_quant_flip_rate / { flip = $2 }
/^adrias_learn_outcomes_total /     { outcomes = $2 }
END {
  failed = 0
  if (retrains + 0 < 1)  { print "FAIL retrains_total " retrains " < 1"; failed = 1 }
  if (gen + 0 < 2)       { print "FAIL model_generation " gen " < 2"; failed = 1 }
  if (outcomes + 0 < 16) { print "FAIL outcomes_total " outcomes " < 16"; failed = 1 }
  if (live + 0 <= 0 || shadow + 0 <= 0) {
    print "FAIL shadow verdict errors missing (live " live ", shadow " shadow ")"; failed = 1
  } else if (shadow + 0 >= live + 0) {
    print "FAIL post-swap error did not improve: shadow " shadow " >= live " live; failed = 1
  } else {
    printf "ok   shadow err %.4f < live err %.4f\n", shadow, live
  }
  # The swap-time replay covers only the recent buffered outcomes (tens of
  # decisions), so one borderline flip quantizes the rate to ~2%; the strict
  # 1% budget is enforced on the 1120-decision bench-gate replay, this gate
  # just catches a broken re-derivation.
  if (flip + 0 < 0 || flip + 0 > 0.05) {
    print "FAIL quantized-twin flip rate " flip " outside [0, 0.05]"; failed = 1
  }
  if (!failed) print "ok   learn lifecycle: retrains " retrains ", generation " gen ", outcomes " outcomes ", quant flip " flip
  exit failed
}' "$scrapes/metrics.txt"

# The swap is audited: a model-swap record with the new generation on
# /debug/decisions. Substring checks grep the saved scrape, not
# `echo | grep -q` (SIGPIPE under pipefail).
curl -fsS "http://127.0.0.1:$port/debug/decisions" >"$scrapes/decisions.json"
for field in '"event": *"model-swap"' '"reason": *"model-swap"' '"model_gen"'; do
  grep -Eq "$field" "$scrapes/decisions.json" || {
    echo "missing $field in /debug/decisions" >&2
    exit 1
  }
done

# The generation markers surface in the adrias-bench audit dump too.
"$tmp/adrias-bench" -target "http://127.0.0.1:$port" -n 8 -conc 2 \
  -dry-run=false -apps gmm,pagerank -dump-decisions \
  >"$scrapes/dump.txt" 2>&1
grep -q 'model swap:' "$scrapes/dump.txt" || {
  echo "no model-swap marker in adrias-bench -dump-decisions output:" >&2
  tail -20 "$scrapes/dump.txt" >&2
  exit 1
}

# Nothing may have panicked, and the drain must still be clean.
if grep -qi 'panic' "$tmp/serve.log"; then
  echo "panic in server log:" >&2
  cat "$tmp/serve.log" >&2
  exit 1
fi
kill -TERM "$pid"
wait "$pid" # non-zero (under set -e) if the drain was not clean
pid=""
cp "$tmp/serve.log" "$scrapes/serve.log"
echo "learn smoke OK"
