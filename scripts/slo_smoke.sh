#!/usr/bin/env bash
# End-to-end SLO smoke test of the alerting layer: start adrias-serve with a
# deterministic fault schedule and tightened SLO windows, drive load through
# the adrias-bench chaos harness with the SLO assertion armed, and require:
#
#   - the downgrade-rate objective pages on /debug/slo while the fabric
#     partition holds and clears again after recovery (bench exits non-zero
#     otherwise),
#   - the alert lifecycle is visible on /metrics (adrias_slo_* series with
#     at least one recorded transition),
#   - the wide-event admission log captured committed placements, both in
#     the /debug/events ring and in the -event-log JSONL file,
#   - adrias-watch -once renders a snapshot off the live service,
#   - SIGTERM still drains cleanly after the run.
#
# The clock runs at 4 simulated seconds per wall second (-tick 250ms), so
# the schedule (outage 4–44, flap 8–32) plays out in ~11 wall seconds; the
# tightened windows (fast 10s/40s at burn 1.5) page inside the flap and
# drain within the 24 s harness + grace. With ARTIFACT_DIR set, the scrapes
# are saved there for upload as a CI artifact.
set -euo pipefail

cd "$(dirname "$0")/.."
port="${PORT:-7744}"
tmp="$(mktemp -d)"
scrapes="${ARTIFACT_DIR:-$tmp/scrapes}"
mkdir -p "$scrapes"
pid=""
cleanup() {
  [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/adrias-serve" ./cmd/adrias-serve
go build -o "$tmp/adrias-bench" ./cmd/adrias-bench
go build -o "$tmp/adrias-watch" ./cmd/adrias-watch

spec='predict-error@4+40;fabric-flap@8+24'
slo='downgrade-rate:budget=0.05,fast=10/40@1.5,slow=60/120@1000'
"$tmp/adrias-serve" -listen "127.0.0.1:$port" -tick 250ms \
  -fault-spec "$spec" -breaker-threshold 3 -breaker-cooldown 8 \
  -slo-spec "$slo" -event-log "$scrapes/events.jsonl" -event-sample 1 \
  >"$tmp/serve.log" 2>&1 &
pid=$!

ready=""
for _ in $(seq 1 120); do
  if curl -fsS "http://127.0.0.1:$port/healthz" >/dev/null 2>&1; then
    ready=1
    break
  fi
  if ! kill -0 "$pid" 2>/dev/null; then
    echo "adrias-serve exited before becoming healthy:" >&2
    cat "$tmp/serve.log" >&2
    exit 1
  fi
  sleep 1
done
if [ -z "$ready" ]; then
  echo "adrias-serve did not become healthy in time:" >&2
  cat "$tmp/serve.log" >&2
  exit 1
fi

# A short committed (non-dry-run) burst populates the wide-event log before
# the faults land; the chaos load itself stays dry-run.
"$tmp/adrias-bench" -target "http://127.0.0.1:$port" -n 40 -conc 4 \
  -dry-run=false >"$scrapes/loadgen.txt" 2>&1 || {
  echo "committed-load burst failed:" >&2
  cat "$scrapes/loadgen.txt" >&2
  exit 1
}

# The chaos harness exits non-zero unless the whole contract holds — and
# with -assert-slo, unless downgrade-rate paged during the faults AND
# cleared again within the grace window. This is the smoke's core gate.
"$tmp/adrias-bench" -target "http://127.0.0.1:$port" -chaos \
  -chaos-duration 24s -conc 6 \
  -assert-slo downgrade-rate -slo-grace 30s >"$scrapes/chaos.txt" 2>&1 || {
  echo "slo chaos harness failed:" >&2
  cat "$scrapes/chaos.txt" >&2
  exit 1
}
cat "$scrapes/chaos.txt"

# The alert lifecycle must be visible on /metrics: per-objective series
# present and the downgrade-rate objective transitioned at least twice
# (page + clear).
metrics="$(curl -fsS "http://127.0.0.1:$port/metrics")"
echo "$metrics" >"$scrapes/metrics.txt"
for series in adrias_slo_state adrias_slo_burn_rate_fast adrias_slo_burn_rate_slow \
  adrias_slo_budget_remaining adrias_slo_transitions_total adrias_slo_evaluations_total \
  adrias_events_seen_total adrias_events_recorded_total; do
  # Grep the saved scrape, not `echo | grep -q`: under pipefail a large
  # payload would turn grep's early exit into a SIGPIPE false failure.
  grep -q "^$series" "$scrapes/metrics.txt" || {
    echo "missing $series in /metrics" >&2
    exit 1
  }
done
transitions="$(awk '/^adrias_slo_transitions_total\{objective="downgrade-rate"\}/{print $2}' "$scrapes/metrics.txt")"
if [ -z "$transitions" ] || [ "$transitions" -lt 2 ]; then
  echo "downgrade-rate recorded ${transitions:-0} transitions on /metrics, want the page+clear pair" >&2
  grep adrias_slo "$scrapes/metrics.txt" >&2
  exit 1
fi

# The final SLO surface and the wide-event ring ship as artifacts.
curl -fsS "http://127.0.0.1:$port/debug/slo" >"$scrapes/slo.json"
curl -fsS "http://127.0.0.1:$port/debug/events?limit=100" >"$scrapes/events_ring.json"
case "$(cat "$scrapes/slo.json")" in
*'"downgrade-rate"'*) ;;
*)
  echo "/debug/slo does not list the downgrade-rate objective" >&2
  exit 1
  ;;
esac

# The committed burst must have produced wide events — in the ring and in
# the JSONL file (one JSON object per line, kind "admission").
case "$(cat "$scrapes/events_ring.json")" in
*'"admission"'*) ;;
*)
  echo "/debug/events holds no admission wide events" >&2
  exit 1
  ;;
esac
if [ ! -s "$scrapes/events.jsonl" ]; then
  echo "-event-log JSONL file is empty" >&2
  exit 1
fi
if ! head -1 "$scrapes/events.jsonl" | python3 -c 'import json,sys; json.loads(sys.stdin.readline())' 2>/dev/null; then
  # Fall back to a structural check when python3 is unavailable.
  case "$(head -1 "$scrapes/events.jsonl")" in
  '{'*'}') ;;
  *)
    echo "-event-log first line is not a JSON object:" >&2
    head -1 "$scrapes/events.jsonl" >&2
    exit 1
    ;;
  esac
fi

# The -once snapshot renders one frame off the live service.
"$tmp/adrias-watch" -once -serve "http://127.0.0.1:$port" >"$scrapes/watch_once.txt" || {
  echo "adrias-watch -once failed" >&2
  cat "$scrapes/watch_once.txt" >&2
  exit 1
}
grep -q 'slo overall=' "$scrapes/watch_once.txt" || {
  echo "adrias-watch -once rendered no SLO frame:" >&2
  cat "$scrapes/watch_once.txt" >&2
  exit 1
}

# Nothing may have panicked under fault injection.
if grep -qi 'panic' "$tmp/serve.log"; then
  echo "panic in server log:" >&2
  cat "$tmp/serve.log" >&2
  exit 1
fi

kill -TERM "$pid"
wait "$pid" # non-zero (under set -e) if the drain was not clean
pid=""
cp "$tmp/serve.log" "$scrapes/serve.log"
echo "slo smoke OK"
