#!/usr/bin/env bash
# trace_overhead.sh — measure what live span recording costs on the serve
# placement path. Runs BenchmarkPlaceBatchSizes (no recorder in the context,
# so obs.StartSpan no-ops) and BenchmarkPlaceBatchSizesTraced (live
# SpanRecorder per batch) over the identical workload, prints a benchdiff
# report, and fails when the traced batch-8 case is more than
# MAX_OVERHEAD_PCT (default 5) percent slower than the untraced one.
#
# Both benchmarks run -count times and the gate compares the per-variant
# minima, which filters scheduler noise out of low-iteration CI boxes.
set -euo pipefail
cd "$(dirname "$0")/.."

max="${MAX_OVERHEAD_PCT:-5}"
benchtime="${BENCHTIME:-200x}"
count="${COUNT:-5}"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

go test -run='^$' -cpu=1 -benchtime="$benchtime" -count="$count" \
  -bench='^BenchmarkPlaceBatchSizes$' ./internal/serve | tee "$tmp/plain.txt"
go test -run='^$' -cpu=1 -benchtime="$benchtime" -count="$count" \
  -bench='^BenchmarkPlaceBatchSizesTraced$' ./internal/serve | tee "$tmp/traced.txt"

# Side-by-side report: rename the traced results so benchdiff pairs them
# with their untraced counterparts.
sed 's/BenchmarkPlaceBatchSizesTraced/BenchmarkPlaceBatchSizes/' \
  "$tmp/traced.txt" >"$tmp/traced-renamed.txt"
./scripts/benchdiff.sh "$tmp/plain.txt" "$tmp/traced-renamed.txt"

min_ns() { # min_ns file benchmark-pattern → smallest ns/op across -count runs
  awk -v pat="$2" '
    $1 ~ pat { for (i = 2; i <= NF; i++) if ($i == "ns/op" && (best == "" || $(i-1) + 0 < best + 0)) best = $(i-1) }
    END { print best }' "$1"
}
plain="$(min_ns "$tmp/plain.txt" '^BenchmarkPlaceBatchSizes/batch-8$')"
traced="$(min_ns "$tmp/traced.txt" '^BenchmarkPlaceBatchSizesTraced/batch-8$')"
if [ -z "$plain" ] || [ -z "$traced" ]; then
  echo "trace_overhead: batch-8 results missing (plain='$plain' traced='$traced')" >&2
  exit 1
fi

awk -v p="$plain" -v t="$traced" -v max="$max" 'BEGIN {
  pct = (t - p) * 100 / p
  printf "batch-8: untraced %.0f ns/op, traced %.0f ns/op → %+.2f%% (budget %s%%)\n", p, t, pct, max
  exit (pct > max + 0) ? 1 : 0
}' || {
  echo "trace_overhead: span recording exceeds the batch-8 overhead budget" >&2
  exit 1
}
echo "trace overhead OK"
