#!/usr/bin/env bash
# End-to-end smoke test of the scale-out placement tier: start adrias-serve
# with 4 replica deciders over a 2-node rack, a chaos fault schedule armed
# (the optimistic claim/commit path must coexist with the degradation
# layer), drive concurrent deploying load through the generator, and
# require:
#
#   - every request is answered with a valid placement (no 5xx, no panics),
#   - replica shards actually decided (adrias_serve_shard_decisions_total > 0),
#   - the rack state is published: cluster_nodes = 2, a live view version,
#     and per-node occupancy gauges for node 0 AND node 1,
#   - the commit-conflict counters render and stay mutually consistent
#     (downgrades ≤ retries; drops bounded by the ring),
#   - SIGTERM still drains cleanly with replicas racing the shutdown.
#
# With ARTIFACT_DIR set, the scrapes are saved there for upload as a CI
# artifact.
set -euo pipefail

cd "$(dirname "$0")/.."
port="${PORT:-7753}"
tmp="$(mktemp -d)"
scrapes="${ARTIFACT_DIR:-$tmp/scrapes}"
mkdir -p "$scrapes"
pid=""
cleanup() {
  [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/adrias-serve" ./cmd/adrias-serve
go build -o "$tmp/adrias-bench" ./cmd/adrias-bench

spec='predict-error@6+10;fabric-flap@20+8'
"$tmp/adrias-serve" -listen "127.0.0.1:$port" -tick 250ms \
  -replicas 4 -nodes 2 -fault-spec "$spec" \
  >"$tmp/serve.log" 2>&1 &
pid=$!

ready=""
for _ in $(seq 1 120); do
  if curl -fsS "http://127.0.0.1:$port/healthz" >/dev/null 2>&1; then
    ready=1
    break
  fi
  if ! kill -0 "$pid" 2>/dev/null; then
    echo "adrias-serve exited before becoming healthy:" >&2
    cat "$tmp/serve.log" >&2
    exit 1
  fi
  sleep 1
done
if [ -z "$ready" ]; then
  echo "adrias-serve did not become healthy in time:" >&2
  cat "$tmp/serve.log" >&2
  exit 1
fi

# Deploying load (not dry-run): claims must commit against the rack so the
# view version moves and the sequencer path is exercised under contention.
"$tmp/adrias-bench" -target "http://127.0.0.1:$port" \
  -n 400 -conc 12 -dry-run=false >"$scrapes/loadgen.txt" || {
  echo "load generator failed:" >&2
  cat "$scrapes/loadgen.txt" >&2
  exit 1
}
cat "$scrapes/loadgen.txt"

metrics="$(curl -fsS "http://127.0.0.1:$port/metrics")"
echo "$metrics" >"$scrapes/metrics.txt"

val() { awk -v s="$1" '$1 == s {print $2}' "$scrapes/metrics.txt"; }

nodes="$(val adrias_serve_cluster_nodes)"
if [ "${nodes%.*}" != "2" ]; then
  echo "adrias_serve_cluster_nodes=${nodes:-missing}, want 2" >&2
  exit 1
fi
viewver="$(val adrias_serve_cluster_view_version)"
if [ -z "$viewver" ] || ! awk -v v="$viewver" 'BEGIN{exit !(v > 0)}'; then
  echo "rack-state view never published (view_version=${viewver:-missing})" >&2
  exit 1
fi
shards="$(val adrias_serve_shard_decisions_total)"
if [ -z "$shards" ] || ! awk -v v="$shards" 'BEGIN{exit !(v > 0)}'; then
  echo "replica shards made no decisions (shard_decisions_total=${shards:-missing})" >&2
  exit 1
fi
retries="$(val adrias_serve_commit_retries_total)"
downgrades="$(val adrias_serve_commit_downgrades_total)"
if ! awk -v r="$retries" -v d="$downgrades" 'BEGIN{exit !(d <= r)}'; then
  echo "conflict accounting drift: downgrades=$downgrades > retries=$retries" >&2
  exit 1
fi
for series in adrias_serve_commit_conflicts_total adrias_serve_retry_dropped_total \
  'adrias_serve_node_running{node="0"}' 'adrias_serve_node_running{node="1"}' \
  'adrias_serve_node_remote_free_gb{node="0"}' 'adrias_serve_node_remote_free_gb{node="1"}' \
  'adrias_serve_node_fabric_util{node="1"}'; do
  grep -qF "$series" "$scrapes/metrics.txt" || {
    echo "missing $series in /metrics" >&2
    exit 1
  }
done

# Placements must name nodes across the rack: the audit log's node field is
# the end-to-end evidence that the placement tier chose pools, not just
# tiers. (Node 0 is omitted from JSON; any node:1 record proves the
# plumbing. The endpoint pretty-prints, hence the space in the pattern.)
decisions="$(curl -fsS "http://127.0.0.1:$port/debug/decisions")"
echo "$decisions" >"$scrapes/decisions.json"
case "$decisions" in
*'"node": 1'* | *'"node":1'*) ;;
*)
  echo "no decision ever targeted node 1 — rack placement not exercised" >&2
  exit 1
  ;;
esac

if grep -qi 'panic' "$tmp/serve.log"; then
  echo "panic in server log:" >&2
  cat "$tmp/serve.log" >&2
  exit 1
fi

kill -TERM "$pid"
wait "$pid" # non-zero (under set -e) if the drain was not clean
pid=""
cp "$tmp/serve.log" "$scrapes/serve.log"
echo "shard smoke OK"
