#!/usr/bin/env bash
# End-to-end smoke test of generation-aware shards: the online learning
# loop (-learn) composed with the scale-out placement tier (-replicas 4
# -nodes 2) — the pairing that was rejected at flag parse before the shards
# became generation-aware. Start adrias-serve with both armed and a
# drifting ambient program, drive deployed placements through the replica
# deciders so their realized outcomes join back through the sharded commit
# path, and require:
#
#   - the lifecycle completes under sharded admission: drift trips, a
#     retrain runs, the candidate is promoted
#     (adrias_learn_swaps_total ≥ 1, adrias_learn_model_generation ≥ 2),
#   - the promotion propagates to every replica: all four
#     adrias_serve_shard_generation{shard="i"} gauges reach ≥ 2 within the
#     polling budget (each shard re-clones on its next batch after the
#     swap), and adrias_serve_shard_reclones_total ≥ 4,
#   - the propagation is auditable per decider: /debug/decisions holds the
#     model-swap record plus, for every replica 1..4, a post-swap decision
#     stamped with that replica and a promoted generation,
#   - SIGTERM still drains cleanly with replicas racing the shutdown.
#
# With ARTIFACT_DIR set, the scrapes are saved there for upload as a CI
# artifact.
set -euo pipefail

cd "$(dirname "$0")/.."
port="${PORT:-7754}"
tmp="$(mktemp -d)"
scrapes="${ARTIFACT_DIR:-$tmp/scrapes}"
mkdir -p "$scrapes"
pid=""
bench=""
cleanup() {
  [ -n "$bench" ] && kill "$bench" 2>/dev/null || true
  [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/adrias-serve" ./cmd/adrias-serve
go build -o "$tmp/adrias-bench" ./cmd/adrias-bench

# Same lifecycle calibration as learn_smoke.sh (load under the ~0.08/sim-s
# saturation knee, ramp 0.02 → 0.05 to trip the detector), plus the rack:
# four replica deciders over two nodes.
"$tmp/adrias-serve" -listen "127.0.0.1:$port" -tick 20ms -sim-per-tick 10 \
  -seed 11 -quantized -learn -replicas 4 -nodes 2 \
  -ambient 0.02 -ambient-ramp-to 0.05 -ambient-ramp-sec 2000 \
  -learn-drift-threshold 0.05 -learn-drift-window 64 \
  -learn-min-outcomes 16 -learn-shadow-warmup 10 \
  -learn-cooldown 30 -learn-epochs 4 \
  >"$tmp/serve.log" 2>&1 &
pid=$!

ready=""
for _ in $(seq 1 120); do
  if curl -fsS "http://127.0.0.1:$port/healthz" >/dev/null 2>&1; then
    ready=1
    break
  fi
  if ! kill -0 "$pid" 2>/dev/null; then
    echo "adrias-serve exited before becoming healthy:" >&2
    cat "$tmp/serve.log" >&2
    exit 1
  fi
  sleep 1
done
if [ -z "$ready" ]; then
  echo "adrias-serve did not become healthy in time:" >&2
  cat "$tmp/serve.log" >&2
  exit 1
fi

# Deployed placements through the replica deciders: the sharded commit path
# must feed the learner's join table or no outcomes ever arrive and the
# loop never leaves Idle — this smoke is the end-to-end proof of that feed.
"$tmp/adrias-bench" -target "http://127.0.0.1:$port" -n 4000 -conc 4 \
  -rate 8 -dry-run=false -apps gmm,pagerank,kmeans,wordcount \
  >"$scrapes/loadgen.txt" 2>&1 &
bench=$!

# Phase 1: poll until the loop promotes a candidate.
swapped=""
for _ in $(seq 1 240); do
  curl -fsS "http://127.0.0.1:$port/metrics" >"$scrapes/metrics.txt" 2>/dev/null || true
  swaps="$(awk '/^adrias_learn_swaps_total /{print $2}' "$scrapes/metrics.txt")"
  if [ -n "$swaps" ] && [ "${swaps%.*}" -ge 1 ] 2>/dev/null; then
    swapped=1
    break
  fi
  if ! kill -0 "$pid" 2>/dev/null; then
    echo "adrias-serve died mid-run:" >&2
    cat "$tmp/serve.log" >&2
    exit 1
  fi
  sleep 0.5
done
if [ -z "$swapped" ]; then
  echo "no model swap within the polling budget; learn metrics:" >&2
  grep '^adrias_learn' "$scrapes/metrics.txt" >&2 || true
  exit 1
fi

# Phase 2: the load keeps flowing, so every shard decides post-swap batches
# — poll until all four generation gauges reach ≥ 2 (each shard re-clones
# on its first batch after the eager invalidation).
propagated=""
for _ in $(seq 1 120); do
  curl -fsS "http://127.0.0.1:$port/metrics" >"$scrapes/metrics.txt" 2>/dev/null || true
  if awk '
    /^adrias_serve_shard_generation\{shard="[0-3]"\} / { if ($2 + 0 >= 2) up++ }
    END { exit !(up == 4) }' "$scrapes/metrics.txt"; then
    propagated=1
    break
  fi
  if ! kill -0 "$pid" 2>/dev/null; then
    echo "adrias-serve died mid-run:" >&2
    cat "$tmp/serve.log" >&2
    exit 1
  fi
  sleep 0.5
done
kill "$bench" 2>/dev/null || true
wait "$bench" 2>/dev/null || true
bench=""
if [ -z "$propagated" ]; then
  echo "promotion did not reach all four shards; shard metrics:" >&2
  grep '^adrias_serve_shard' "$scrapes/metrics.txt" >&2 || true
  exit 1
fi

# The propagation machinery must be visible in /metrics: every shard
# re-cloned at least once, shards actually decided, and the double-finalize
# guard saw no real duplicates go unfinalized (the counter renders).
awk '
/^adrias_learn_retrains_total /        { retrains = $2 }
/^adrias_learn_model_generation /      { gen = $2 }
/^adrias_serve_shard_decisions_total / { decisions = $2 }
/^adrias_serve_shard_reclones_total /  { reclones = $2 }
/^adrias_serve_finalize_dups_total /   { dups = $2; have_dups = 1 }
END {
  failed = 0
  if (retrains + 0 < 1)   { print "FAIL retrains_total " retrains " < 1"; failed = 1 }
  if (gen + 0 < 2)        { print "FAIL model_generation " gen " < 2"; failed = 1 }
  if (decisions + 0 < 1)  { print "FAIL shard_decisions_total " decisions " < 1"; failed = 1 }
  if (reclones + 0 < 4)   { print "FAIL shard_reclones_total " reclones " < 4 — some replica never re-cloned"; failed = 1 }
  if (!have_dups)         { print "FAIL adrias_serve_finalize_dups_total missing from /metrics"; failed = 1 }
  if (!failed) print "ok   propagation: generation " gen ", reclones " reclones ", shard decisions " decisions ", finalize dups " dups
  exit failed
}' "$scrapes/metrics.txt"

# The swap and the per-replica propagation are auditable on
# /debug/decisions. Records are flattened one-per-line so co-occurrence of
# fields can be asserted within a single record (the endpoint
# pretty-prints; `grep A | grep -q B` would SIGPIPE under pipefail).
curl -fsS "http://127.0.0.1:$port/debug/decisions" >"$scrapes/decisions.json"
tr -d ' \n' <"$scrapes/decisions.json" | sed 's/},{/}\
{/g' >"$scrapes/decisions.flat"
grep -q '"event":"model-swap"' "$scrapes/decisions.flat" || {
  echo "missing model-swap record in /debug/decisions" >&2
  exit 1
}
for r in 1 2 3 4; do
  awk -v r="$r" '
    $0 ~ ("\"replica\":" r "[,}]") {
      if (match($0, /"model_gen":[0-9]+/) && substr($0, RSTART + 12, RLENGTH - 12) + 0 >= 2) found = 1
    }
    END { exit !found }' "$scrapes/decisions.flat" || {
    echo "no post-swap decision audited for replica $r in /debug/decisions" >&2
    grep -o "\"replica\":$r[,}]" "$scrapes/decisions.flat" | head -3 >&2 || true
    exit 1
  }
done
echo "ok   audit: model-swap recorded; replicas 1-4 each decided on a promoted generation"

# Nothing may have panicked, and the drain must still be clean.
if grep -qi 'panic' "$tmp/serve.log"; then
  echo "panic in server log:" >&2
  cat "$tmp/serve.log" >&2
  exit 1
fi
kill -TERM "$pid"
wait "$pid" # non-zero (under set -e) if the drain was not clean
pid=""
cp "$tmp/serve.log" "$scrapes/serve.log"
echo "learn-shard smoke OK"
