#!/usr/bin/env bash
# End-to-end chaos smoke test of the graceful-degradation layer: start
# adrias-serve with a deterministic fault schedule armed (a predictor outage
# overlapping a fabric link flap, then a latency inflation), drive sustained
# load through the adrias-bench chaos harness, and require:
#
#   - every answered request carries a valid placement (no panics, no 5xx),
#   - the circuit breaker is observed open and then recovered on /healthz,
#   - /metrics records at least one breaker trip AND one recovery,
#   - /debug/decisions retains breaker-open fallback decisions,
#   - SIGTERM still drains cleanly after the chaos run.
#
# The clock runs at 4 simulated seconds per wall second (-tick 250ms), so the
# schedule below (sim seconds: outage 4–44, flap 8–32, latency 44–56) plays
# out in ~14 wall seconds; the 20 s harness covers it plus recovery. With
# ARTIFACT_DIR set, the scrapes are saved there for upload as a CI artifact.
set -euo pipefail

cd "$(dirname "$0")/.."
port="${PORT:-7743}"
tmp="$(mktemp -d)"
scrapes="${ARTIFACT_DIR:-$tmp/scrapes}"
mkdir -p "$scrapes"
pid=""
cleanup() {
  [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/adrias-serve" ./cmd/adrias-serve
go build -o "$tmp/adrias-bench" ./cmd/adrias-bench

spec='predict-error@4+40;fabric-flap@8+24;fabric-latency@44+12=2.5'
"$tmp/adrias-serve" -listen "127.0.0.1:$port" -tick 250ms \
  -fault-spec "$spec" -breaker-threshold 3 -breaker-cooldown 8 \
  >"$tmp/serve.log" 2>&1 &
pid=$!

ready=""
for _ in $(seq 1 120); do
  if curl -fsS "http://127.0.0.1:$port/healthz" >/dev/null 2>&1; then
    ready=1
    break
  fi
  if ! kill -0 "$pid" 2>/dev/null; then
    echo "adrias-serve exited before becoming healthy:" >&2
    cat "$tmp/serve.log" >&2
    exit 1
  fi
  sleep 1
done
if [ -z "$ready" ]; then
  echo "adrias-serve did not become healthy in time:" >&2
  cat "$tmp/serve.log" >&2
  exit 1
fi

# The chaos harness exits non-zero unless degradation was graceful end to
# end: valid placements throughout, degraded /healthz, breaker open, then
# recovered.
"$tmp/adrias-bench" -target "http://127.0.0.1:$port" -chaos \
  -chaos-duration 20s -conc 6 >"$scrapes/chaos.txt" 2>&1 &
bench=$!

# The decision audit ring retains only the most recent decisions, and the
# healthy traffic after recovery flushes the outage out of it — poll
# /debug/decisions while the fault schedule plays out and keep the first
# scrape that caught breaker-open fallbacks in the ring.
sawopen=""
for _ in $(seq 1 30); do
  decisions="$(curl -fsS "http://127.0.0.1:$port/debug/decisions" || true)"
  # Substring match, not `echo | grep -q`: grep -q exits at the first hit
  # and under pipefail the echo's SIGPIPE would read as failure.
  case "$decisions" in
  *'"breaker-open"'*)
    if [ -z "$sawopen" ]; then
      sawopen=1
      echo "$decisions" >"$scrapes/decisions.json"
    fi
    ;;
  esac
  sleep 0.5
done
if [ -z "$sawopen" ]; then
  echo "$decisions" >"$scrapes/decisions.json"
fi

wait "$bench" || {
  echo "chaos harness failed:" >&2
  cat "$scrapes/chaos.txt" >&2
  exit 1
}
cat "$scrapes/chaos.txt"

# The breaker lifecycle and the injected faults must be visible in /metrics.
metrics="$(curl -fsS "http://127.0.0.1:$port/metrics")"
echo "$metrics" >"$scrapes/metrics.txt"
trips="$(echo "$metrics" | awk '/^adrias_serve_breaker_trips_total /{print $2}')"
recoveries="$(echo "$metrics" | awk '/^adrias_serve_breaker_recoveries_total /{print $2}')"
if [ -z "$trips" ] || [ "$trips" -lt 1 ]; then
  echo "breaker never tripped (adrias_serve_breaker_trips_total=${trips:-missing}):" >&2
  echo "$metrics" | grep adrias_serve_breaker >&2
  exit 1
fi
if [ -z "$recoveries" ] || [ "$recoveries" -lt 1 ]; then
  echo "breaker never recovered (adrias_serve_breaker_recoveries_total=${recoveries:-missing}):" >&2
  echo "$metrics" | grep adrias_serve_breaker >&2
  exit 1
fi
for series in adrias_faults_activations_total adrias_faults_injected_total \
  adrias_serve_degraded adrias_thymesis_degraded; do
  # Grep the saved scrape, not `echo | grep -q`: under pipefail a large
  # payload would turn grep's early exit into a SIGPIPE false failure.
  grep -q "^$series" "$scrapes/metrics.txt" || {
    echo "missing $series in /metrics" >&2
    exit 1
  }
done

# A mid-outage audit scrape must have held breaker-open fallback decisions:
# requests served off the cached/safe-local path while the predictor was
# down, with the reason recorded.
if [ -z "$sawopen" ]; then
  echo "no breaker-open decisions observed in /debug/decisions during the outage" >&2
  exit 1
fi

# Nothing may have panicked under fault injection.
if grep -qi 'panic' "$tmp/serve.log"; then
  echo "panic in server log:" >&2
  cat "$tmp/serve.log" >&2
  exit 1
fi

kill -TERM "$pid"
wait "$pid" # non-zero (under set -e) if the drain was not clean
pid=""
cp "$tmp/serve.log" "$scrapes/serve.log"
echo "chaos smoke OK"
