#!/usr/bin/env bash
# End-to-end smoke test of the placement service: build adrias-serve and the
# adrias-bench load generator, start the service (fast-trained models, pprof
# listener on), wait until /healthz answers, drive 100 requests through the
# load generator, check the metrics / trace / decision-audit endpoints, then
# SIGTERM and require a clean drain. With ARTIFACT_DIR set, the observability
# scrapes are saved there for upload as a CI artifact.
set -euo pipefail

cd "$(dirname "$0")/.."
port="${PORT:-7741}"
dbgport="${DEBUG_PORT:-7742}"
tmp="$(mktemp -d)"
scrapes="${ARTIFACT_DIR:-$tmp/scrapes}"
mkdir -p "$scrapes"
pid=""
cleanup() {
  [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/adrias-serve" ./cmd/adrias-serve
go build -o "$tmp/adrias-bench" ./cmd/adrias-bench

"$tmp/adrias-serve" -listen "127.0.0.1:$port" -tick 500ms \
  -debug-addr "127.0.0.1:$dbgport" >"$tmp/serve.log" 2>&1 &
pid=$!

ready=""
for _ in $(seq 1 120); do
  if curl -fsS "http://127.0.0.1:$port/healthz" >/dev/null 2>&1; then
    ready=1
    break
  fi
  if ! kill -0 "$pid" 2>/dev/null; then
    echo "adrias-serve exited before becoming healthy:" >&2
    cat "$tmp/serve.log" >&2
    exit 1
  fi
  sleep 1
done
if [ -z "$ready" ]; then
  echo "adrias-serve did not become healthy in time:" >&2
  cat "$tmp/serve.log" >&2
  exit 1
fi

# 100 requests, mixed application classes; the generator exits non-zero on
# any transport error or 5xx. -dump-decisions exercises the audit-log
# read-out path against the live server.
"$tmp/adrias-bench" -target "http://127.0.0.1:$port" -n 100 -conc 8 \
  -dump-decisions | tee "$scrapes/loadgen.txt"

# All 100 must have been served OK, and the admission pipeline must have
# actually coalesced them into batches. Checks grep the saved scrape files,
# not `echo "$var" | grep -q`: grep -q exits at the first hit and under
# pipefail the echo's SIGPIPE would read as a spurious failure once the
# payload outgrows the pipe buffer.
curl -fsS "http://127.0.0.1:$port/metrics" >"$scrapes/metrics.txt"
grep -q 'adrias_serve_requests_total{outcome="ok"} 100' "$scrapes/metrics.txt" || {
  echo "expected 100 ok requests in /metrics:" >&2
  grep adrias_serve_requests_total "$scrapes/metrics.txt" >&2
  exit 1
}
grep -q '^adrias_serve_batches_total' "$scrapes/metrics.txt" || {
  echo "missing batch counter in /metrics" >&2
  exit 1
}

# One scrape must carry series from serve, bus, models, thymesis, and the
# Go runtime at once — the repo-wide registry is wired, not just serve's.
for series in adrias_serve_queue_wait_seconds_count adrias_bus_published_total \
  adrias_models_inference_batches_total adrias_thymesis_flits_tx_total \
  adrias_go_goroutines; do
  grep -q "^$series" "$scrapes/metrics.txt" || {
    echo "missing $series in /metrics" >&2
    exit 1
  }
done

# Every request is traceable: the trace ring must hold the pipeline stages
# (queue wait and coalescing per request, the model/decide spans per batch).
curl -fsS "http://127.0.0.1:$port/debug/traces" >"$scrapes/traces.json"
for stage in queue_wait coalesce signature_lookup sysstate_predict \
  perf_predict decide; do
  grep -q "\"$stage\"" "$scrapes/traces.json" || {
    echo "missing stage $stage in /debug/traces" >&2
    exit 1
  }
done

# Every decision is audited with the predictions that produced it.
curl -fsS "http://127.0.0.1:$port/debug/decisions" >"$scrapes/decisions.json"
for field in trace_id pred_local_s beta reason; do
  grep -q "\"$field\"" "$scrapes/decisions.json" || {
    echo "missing field $field in /debug/decisions" >&2
    exit 1
  }
done

# The pprof surface answers on the separate debug listener.
curl -fsS "http://127.0.0.1:$dbgport/debug/pprof/" >/dev/null || {
  echo "pprof index not served on the debug listener" >&2
  exit 1
}

kill -TERM "$pid"
wait "$pid" # non-zero (under set -e) if the drain was not clean
grep -q "served 100 ok" "$tmp/serve.log" || {
  echo "drain report missing from server log:" >&2
  cat "$tmp/serve.log" >&2
  exit 1
}
pid=""
echo "serve smoke OK"
