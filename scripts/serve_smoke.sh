#!/usr/bin/env bash
# End-to-end smoke test of the placement service: build adrias-serve and the
# adrias-bench load generator, start the service (fast-trained models), wait
# until /healthz answers, drive 100 requests through the load generator,
# check the metrics endpoint, then SIGTERM and require a clean drain.
set -euo pipefail

cd "$(dirname "$0")/.."
port="${PORT:-7741}"
tmp="$(mktemp -d)"
pid=""
cleanup() {
  [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/adrias-serve" ./cmd/adrias-serve
go build -o "$tmp/adrias-bench" ./cmd/adrias-bench

"$tmp/adrias-serve" -listen "127.0.0.1:$port" -tick 500ms >"$tmp/serve.log" 2>&1 &
pid=$!

ready=""
for _ in $(seq 1 120); do
  if curl -fsS "http://127.0.0.1:$port/healthz" >/dev/null 2>&1; then
    ready=1
    break
  fi
  if ! kill -0 "$pid" 2>/dev/null; then
    echo "adrias-serve exited before becoming healthy:" >&2
    cat "$tmp/serve.log" >&2
    exit 1
  fi
  sleep 1
done
if [ -z "$ready" ]; then
  echo "adrias-serve did not become healthy in time:" >&2
  cat "$tmp/serve.log" >&2
  exit 1
fi

# 100 requests, mixed application classes; the generator exits non-zero on
# any transport error or 5xx.
"$tmp/adrias-bench" -target "http://127.0.0.1:$port" -n 100 -conc 8

# All 100 must have been served OK, and the admission pipeline must have
# actually coalesced them into batches.
metrics="$(curl -fsS "http://127.0.0.1:$port/metrics")"
echo "$metrics" | grep -q 'adrias_serve_requests_total{outcome="ok"} 100' || {
  echo "expected 100 ok requests in /metrics:" >&2
  echo "$metrics" | grep adrias_serve_requests_total >&2
  exit 1
}
echo "$metrics" | grep -q '^adrias_serve_batches_total' || {
  echo "missing batch counter in /metrics" >&2
  exit 1
}

kill -TERM "$pid"
wait "$pid" # non-zero (under set -e) if the drain was not clean
grep -q "served 100 ok" "$tmp/serve.log" || {
  echo "drain report missing from server log:" >&2
  cat "$tmp/serve.log" >&2
  exit 1
}
pid=""
echo "serve smoke OK"
