#!/usr/bin/env bash
# benchdiff.sh old.txt new.txt — benchstat-style comparison of two
# `go test -bench` outputs. For every benchmark present in both files it
# prints ns/op, B/op, and allocs/op side by side with percent deltas;
# metrics only one run reported print as n/a instead of blank fields, and
# benchmarks present in only one file are listed separately.
# Purely informational: low-iteration CI runs are noisy, so callers must
# not gate on the deltas (the CI step runs with continue-on-error).
set -euo pipefail

old="${1:?usage: benchdiff.sh old.txt new.txt}"
new="${2:?usage: benchdiff.sh old.txt new.txt}"

awk '
function record(name,    i) {
  for (i = 2; i <= NF; i++) {
    if ($i == "ns/op")     ns[file, name] = $(i - 1)
    if ($i == "B/op")      bop[file, name] = $(i - 1)
    if ($i == "allocs/op") al[file, name] = $(i - 1)
  }
  if (!(name in seen)) { seen[name] = 1; order[++n] = name }
  have[file, name] = 1
}
# val: a metric that may be absent in one run (ReportAllocs is per-bench).
function val(file, name, arr) {
  return ((file, name) in arr) ? arr[file, name] : "n/a"
}
function delta(o, v) {
  if (o == "n/a" || v == "n/a") return "n/a"
  if (o + 0 == 0) return (v + 0 == 0) ? "+0.0%" : "n/a"
  return sprintf("%+.1f%%", (v - o) * 100 / o)
}
FNR == 1 { file++ }
/^Benchmark/ { record($1) }
END {
  printf "%-48s %14s %14s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta"
  for (i = 1; i <= n; i++) {
    name = order[i]
    if (have[1, name] && have[2, name]) {
      printf "%-48s %14s %14s %9s\n", name, ns[1, name], ns[2, name], delta(ns[1, name], ns[2, name])
      if ((1, name) in al || (2, name) in al || (1, name) in bop || (2, name) in bop) {
        ob = val(1, name, bop); nb = val(2, name, bop)
        oa = val(1, name, al);  na = val(2, name, al)
        printf "%-48s %9s -> %-9s B/op %9s   allocs %6s -> %-6s %9s\n", \
          "", ob, nb, delta(ob, nb), oa, na, delta(oa, na)
      }
    }
  }
  for (i = 1; i <= n; i++) {
    name = order[i]
    if (have[1, name] && !have[2, name]) printf "%-48s only in old run\n", name
    if (!have[1, name] && have[2, name]) printf "%-48s only in new run\n", name
  }
}' "$old" "$new"
