#!/usr/bin/env bash
# benchdiff.sh old.txt new.txt — benchstat-style comparison of two
# `go test -bench` outputs. For every benchmark present in both files it
# prints ns/op, B/op, and allocs/op side by side with percent deltas;
# metrics only one run reported print as n/a instead of blank fields, and
# benchmarks present in only one file are listed separately.
# Purely informational: low-iteration CI runs are noisy, so callers must
# not gate on the deltas (the CI step runs with continue-on-error).
#
# With no arguments, diffs the two most recent per-PR bench-gate artifacts
# (BENCH_<n>.json, highest two numbers) checked into the repo root instead.
set -euo pipefail

if [ "$#" -eq 0 ]; then
  cd "$(dirname "$0")/.."
  # shellcheck disable=SC2012 # names are BENCH_<digits>.json, ls -v is safe
  set -- $(ls BENCH_[0-9]*.json 2>/dev/null | sort -t_ -k2 -n | tail -2)
  if [ "$#" -lt 2 ]; then
    echo "benchdiff.sh: need at least two BENCH_<n>.json artifacts (have $#)" >&2
    exit 1
  fi
  echo "== benchdiff: $1 vs $2 =="
  awk '
  FNR == 1 { file++ }
  # One benchmark per line in the gate artifact:
  #   "BenchmarkX": {"ns_per_op": 1, "b_per_op": 2, "allocs_per_op": 3},
  /"Benchmark/ {
    line = $0
    gsub(/[",:{}]/, " ", line)
    split(line, f, /[ \t]+/)
    name = f[2]
    for (i = 2; i in f; i++) {
      if (f[i] == "ns_per_op")     ns[file, name] = f[i + 1]
      if (f[i] == "allocs_per_op") al[file, name] = f[i + 1]
    }
    if (!(name in seen)) { seen[name] = 1; order[++n] = name }
    have[file, name] = 1
  }
  # Scalar summary fields (speedups, flip rate).
  /"(predict|serve)_quant_speedup"|"decision_flip_rate"/ {
    line = $0
    gsub(/[",:{}]/, " ", line)
    split(line, f, /[ \t]+/)
    sc[file, f[2]] = f[3]
    if (!(f[2] in sseen)) { sseen[f[2]] = 1; sorder[++sn] = f[2] }
  }
  function delta(o, v) {
    if (o == "" || v == "" || o + 0 == 0) return "n/a"
    return sprintf("%+.1f%%", (v - o) * 100 / o)
  }
  END {
    printf "%-42s %12s %12s %9s %16s\n", "benchmark", "old ns/op", "new ns/op", "delta", "allocs old->new"
    for (i = 1; i <= n; i++) {
      name = order[i]
      if (have[1, name] && have[2, name])
        printf "%-42s %12s %12s %9s %10s -> %s\n", name, ns[1, name], ns[2, name], \
          delta(ns[1, name], ns[2, name]), al[1, name], al[2, name]
      else
        printf "%-42s only in %s run\n", name, (have[1, name] ? "old" : "new")
    }
    for (i = 1; i <= sn; i++) {
      k = sorder[i]
      printf "%-42s %12s %12s %9s\n", k, sc[1, k], sc[2, k], delta(sc[1, k], sc[2, k])
    }
  }' "$1" "$2"
  exit 0
fi

old="${1:?usage: benchdiff.sh [old.txt new.txt]}"
new="${2:?usage: benchdiff.sh [old.txt new.txt]}"

awk '
function record(name,    i) {
  for (i = 2; i <= NF; i++) {
    if ($i == "ns/op")     ns[file, name] = $(i - 1)
    if ($i == "B/op")      bop[file, name] = $(i - 1)
    if ($i == "allocs/op") al[file, name] = $(i - 1)
  }
  if (!(name in seen)) { seen[name] = 1; order[++n] = name }
  have[file, name] = 1
}
# val: a metric that may be absent in one run (ReportAllocs is per-bench).
function val(file, name, arr) {
  return ((file, name) in arr) ? arr[file, name] : "n/a"
}
function delta(o, v) {
  if (o == "n/a" || v == "n/a") return "n/a"
  if (o + 0 == 0) return (v + 0 == 0) ? "+0.0%" : "n/a"
  return sprintf("%+.1f%%", (v - o) * 100 / o)
}
FNR == 1 { file++ }
/^Benchmark/ { record($1) }
END {
  printf "%-48s %14s %14s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta"
  for (i = 1; i <= n; i++) {
    name = order[i]
    if (have[1, name] && have[2, name]) {
      printf "%-48s %14s %14s %9s\n", name, ns[1, name], ns[2, name], delta(ns[1, name], ns[2, name])
      if ((1, name) in al || (2, name) in al || (1, name) in bop || (2, name) in bop) {
        ob = val(1, name, bop); nb = val(2, name, bop)
        oa = val(1, name, al);  na = val(2, name, al)
        printf "%-48s %9s -> %-9s B/op %9s   allocs %6s -> %-6s %9s\n", \
          "", ob, nb, delta(ob, nb), oa, na, delta(oa, na)
      }
    }
  }
  for (i = 1; i <= n; i++) {
    name = order[i]
    if (have[1, name] && !have[2, name]) printf "%-48s only in old run\n", name
    if (!have[1, name] && have[2, name]) printf "%-48s only in new run\n", name
  }
}' "$old" "$new"
