#!/usr/bin/env bash
# bench_gate.sh — the quantized-fast-path benchmark gate.
#
# Runs the batch-8 inference and placement benchmarks at one core plus the
# decision-flip contract suite, writes machine-readable results to
# BENCH_quantfast.json (ns/op, B/op, allocs/op per benchmark, measured
# decision-flip rate, quant/float speedups), and FAILS unless:
#
#   * steady-state allocs/op == 0 on the quantized predict benchmark
#     (BenchmarkPerfPredictEachQuantB8) and the quantized serve hot path
#     (BenchmarkServeHotPathQuantB8);
#   * the measured decision-flip rate is ≤ FLIP_BUDGET (default 0.01);
#   * the quantized serve hot path is ≥ MIN_SPEEDUP× the float baseline
#     (default 1.5; set MIN_SPEEDUP=0 to record without gating);
#   * the armed-observability hot path (SLO engine + wide-event sink,
#     BenchmarkServeHotPathQuantB8Events) also holds 0 allocs/op and costs
#     ≤ EVENTS_BUDGET× the bare quantized path (default 1.05 — within 5%);
#   * the sharded placement tier scales: 4 replica deciders sustain
#     ≥ MIN_SCALE× the single-replica throughput (default 2.5) on the
#     BenchmarkPlaceThroughputR{1,2,4} series at -cpu=4. The scaling gate
#     only applies when the bench box has ≥ 4 cores — replicas cannot
#     outrun the clock on fewer — but the honest numbers (and the core
#     count) are recorded either way;
#   * generation-aware shards are free when idle: with the learning loop
#     armed but not swapping, the per-batch generation check costs the R4
#     tier ≤ LEARN_BUDGET× the learn-off time (default 1.05 — within 5%,
#     BenchmarkPlaceThroughputR4Learn vs BenchmarkPlaceThroughputR4). Like
#     the scaling gate, it only applies with ≥ 4 cores — an oversubscribed
#     box measures scheduler noise, not the check — but the honest ratio
#     is recorded either way.
#
# Besides OUT, the results are mirrored into a numbered per-PR artifact
# BENCH_<n>.json (n from PR_NUM, else one past the highest number already
# present) so `benchdiff.sh` with no arguments can compare the latest two
# PRs' gate numbers.
#
# Env: OUT (default BENCH_quantfast.json), BENCHTIME (default 50x),
#      FLIP_BUDGET, MIN_SPEEDUP, MIN_SCALE, EVENTS_BUDGET, LEARN_BUDGET,
#      PR_NUM.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${OUT:-BENCH_quantfast.json}"
BENCHTIME="${BENCHTIME:-50x}"
FLIP_BUDGET="${FLIP_BUDGET:-0.01}"
MIN_SPEEDUP="${MIN_SPEEDUP:-1.5}"
MIN_SCALE="${MIN_SCALE:-2.5}"
EVENTS_BUDGET="${EVENTS_BUDGET:-1.05}"
LEARN_BUDGET="${LEARN_BUDGET:-1.05}"
NCPU="$(nproc 2>/dev/null || echo 1)"

bench_txt="$(mktemp)"
flip_txt="$(mktemp)"
trap 'rm -f "$bench_txt" "$flip_txt"' EXIT

echo "== bench-gate: batch-8 quantized benchmarks (one core, $BENCHTIME) =="
go test -run='^$' -cpu=1 -benchtime="$BENCHTIME" \
  -bench='^(BenchmarkPerfPredictEachFloatB8|BenchmarkPerfPredictEachQuantB8|BenchmarkServeHotPathFloatB8|BenchmarkServeHotPathQuantB8|BenchmarkServeHotPathQuantB8Events)$' \
  ./internal/models ./internal/serve | tee "$bench_txt"

echo "== bench-gate: sharded placement throughput (replicas 1/2/4, -cpu=4) =="
go test -run='^$' -cpu=4 -benchtime="$BENCHTIME" \
  -bench='^BenchmarkPlaceThroughputR(1|2|4|4Learn)$' \
  ./internal/serve | tee -a "$bench_txt"

echo "== bench-gate: decision-flip contract (fast scale) =="
go run ./cmd/adrias-bench -scale fast -quant | tee "$flip_txt"

flip_rate="$(awk '/decision_flip_rate/ { print $2 }' "$flip_txt" | tail -1)"
if [ -z "$flip_rate" ]; then
  echo "bench-gate: no decision_flip_rate line in the quantflip report" >&2
  exit 1
fi

# Build BENCH_quantfast.json and apply the gates in one awk pass over the
# benchmark lines. Names are stripped of the -<procs> suffix go test adds.
awk -v out="$OUT" -v flip="$flip_rate" -v flip_budget="$FLIP_BUDGET" \
    -v min_speedup="$MIN_SPEEDUP" -v min_scale="$MIN_SCALE" \
    -v events_budget="$EVENTS_BUDGET" -v learn_budget="$LEARN_BUDGET" \
    -v ncpu="$NCPU" '
/^Benchmark/ {
  name = $1
  sub(/-[0-9]+$/, "", name)
  ns[name] = "null"; bop[name] = "null"; alloc[name] = "null"
  for (i = 2; i <= NF; i++) {
    if ($i == "ns/op")        ns[name] = $(i - 1)
    if ($i == "B/op")         bop[name] = $(i - 1)
    if ($i == "allocs/op")    alloc[name] = $(i - 1)
    if ($i == "placements/s") pls[name] = $(i - 1)
  }
  if (!(name in seen)) { seen[name] = 1; order[++n] = name }
}
END {
  printf "{\n  \"benchmarks\": {\n" > out
  for (i = 1; i <= n; i++) {
    name = order[i]
    printf "    \"%s\": {\"ns_per_op\": %s, \"b_per_op\": %s, \"allocs_per_op\": %s}%s\n", \
      name, ns[name], bop[name], alloc[name], (i < n ? "," : "") > out
  }
  printf "  },\n" > out

  fq = ns["BenchmarkPerfPredictEachFloatB8"];  qq = ns["BenchmarkPerfPredictEachQuantB8"]
  fs = ns["BenchmarkServeHotPathFloatB8"];     qs = ns["BenchmarkServeHotPathQuantB8"]
  predict_speedup = (fq != "null" && qq != "null" && qq + 0 > 0) ? fq / qq : 0
  serve_speedup   = (fs != "null" && qs != "null" && qs + 0 > 0) ? fs / qs : 0
  printf "  \"predict_quant_speedup\": %.3f,\n", predict_speedup > out
  printf "  \"serve_quant_speedup\": %.3f,\n", serve_speedup > out
  printf "  \"decision_flip_rate\": %s,\n", flip > out
  printf "  \"flip_budget\": %s,\n", flip_budget > out
  printf "  \"min_speedup\": %s,\n", min_speedup > out

  qe = ns["BenchmarkServeHotPathQuantB8Events"]
  events_overhead = (qs != "null" && qe != "null" && qs + 0 > 0) ? qe / qs : 0
  printf "  \"serve_events_overhead\": %.3f,\n", events_overhead > out
  printf "  \"events_budget\": %s,\n", events_budget > out

  r1 = ("BenchmarkPlaceThroughputR1" in pls) ? pls["BenchmarkPlaceThroughputR1"] + 0 : 0
  r2 = ("BenchmarkPlaceThroughputR2" in pls) ? pls["BenchmarkPlaceThroughputR2"] + 0 : 0
  r4 = ("BenchmarkPlaceThroughputR4" in pls) ? pls["BenchmarkPlaceThroughputR4"] + 0 : 0
  scale4 = (r1 > 0) ? r4 / r1 : 0
  printf "  \"place_throughput_r1\": %.0f,\n", r1 > out
  printf "  \"place_throughput_r2\": %.0f,\n", r2 > out
  printf "  \"place_throughput_r4\": %.0f,\n", r4 > out
  printf "  \"place_scaling_r4\": %.3f,\n", scale4 > out
  printf "  \"min_scale\": %s,\n", min_scale > out
  r4l = ("BenchmarkPlaceThroughputR4Learn" in pls) ? pls["BenchmarkPlaceThroughputR4Learn"] + 0 : 0
  nsr4 = ns["BenchmarkPlaceThroughputR4"]; nsr4l = ns["BenchmarkPlaceThroughputR4Learn"]
  learn_overhead = (nsr4 != "null" && nsr4l != "null" && nsr4 + 0 > 0) ? nsr4l / nsr4 : 0
  printf "  \"place_throughput_r4_learn\": %.0f,\n", r4l > out
  printf "  \"place_learn_overhead\": %.3f,\n", learn_overhead > out
  printf "  \"learn_budget\": %s,\n", learn_budget > out
  printf "  \"bench_cpus\": %d\n}\n", ncpu > out
  close(out)

  failed = 0
  gated["BenchmarkPerfPredictEachQuantB8"] = 1
  gated["BenchmarkServeHotPathQuantB8"] = 1
  gated["BenchmarkServeHotPathQuantB8Events"] = 1
  for (name in gated) {
    if (!(name in seen)) {
      printf "FAIL %s: benchmark did not run\n", name; failed = 1
    } else if (alloc[name] == "null" || alloc[name] + 0 != 0) {
      printf "FAIL %s: %s allocs/op, want 0\n", name, alloc[name]; failed = 1
    } else {
      printf "ok   %s: 0 allocs/op (%s ns/op)\n", name, ns[name]
    }
  }
  if (flip + 0 > flip_budget + 0) {
    printf "FAIL decision-flip rate %s > budget %s\n", flip, flip_budget; failed = 1
  } else {
    printf "ok   decision-flip rate %s <= budget %s\n", flip, flip_budget
  }
  if (min_speedup + 0 > 0) {
    if (serve_speedup < min_speedup + 0) {
      printf "FAIL serve quant speedup %.2fx < %.1fx\n", serve_speedup, min_speedup; failed = 1
    } else {
      printf "ok   serve quant speedup %.2fx >= %.1fx (predict %.2fx)\n", \
        serve_speedup, min_speedup, predict_speedup
    }
  }
  if (events_budget + 0 > 0) {
    if (events_overhead <= 0) {
      printf "FAIL armed-observability overhead could not be measured\n"; failed = 1
    } else if (events_overhead > events_budget + 0) {
      printf "FAIL armed-observability overhead %.3fx > budget %.2fx\n", \
        events_overhead, events_budget; failed = 1
    } else {
      printf "ok   armed-observability overhead %.3fx <= budget %.2fx\n", \
        events_overhead, events_budget
    }
  }
  if (r1 <= 0 || r4 <= 0) {
    printf "FAIL place-throughput benchmarks did not report placements/s\n"; failed = 1
  } else if (ncpu + 0 < 4 || min_scale + 0 <= 0) {
    printf "skip placement scaling gate: %d core(s) < 4 (recorded r1=%.0f r2=%.0f r4=%.0f, scaling %.2fx)\n", \
      ncpu, r1, r2, r4, scale4
  } else if (scale4 < min_scale + 0) {
    printf "FAIL placement scaling %.2fx < %.1fx (r1=%.0f r4=%.0f placements/s)\n", \
      scale4, min_scale, r1, r4; failed = 1
  } else {
    printf "ok   placement scaling %.2fx >= %.1fx (r1=%.0f r2=%.0f r4=%.0f placements/s)\n", \
      scale4, min_scale, r1, r2, r4
  }
  if (learn_budget + 0 > 0) {
    if (learn_overhead <= 0) {
      printf "FAIL learn-armed R4 overhead could not be measured\n"; failed = 1
    } else if (ncpu + 0 < 4) {
      printf "skip learn-armed R4 gate: %d core(s) < 4 (recorded overhead %.3fx, r4learn=%.0f placements/s)\n", \
        ncpu, learn_overhead, r4l
    } else if (learn_overhead > learn_budget + 0) {
      printf "FAIL learn-armed R4 overhead %.3fx > budget %.2fx (r4=%.0f r4learn=%.0f placements/s)\n", \
        learn_overhead, learn_budget, r4, r4l; failed = 1
    } else {
      printf "ok   learn-armed R4 overhead %.3fx <= budget %.2fx (r4learn=%.0f placements/s)\n", \
        learn_overhead, learn_budget, r4l
    }
  }
  exit failed
}' "$bench_txt"

echo "bench-gate: wrote $OUT"

# Per-PR history: number this run's results so the trajectory across PRs is
# diffable from the repo alone (benchdiff.sh picks the latest two by number).
if [ -n "${PR_NUM:-}" ]; then
  n="$PR_NUM"
else
  last="$(ls BENCH_[0-9]*.json 2>/dev/null | sed -n 's/^BENCH_\([0-9][0-9]*\)\.json$/\1/p' | sort -n | tail -1)"
  n=$((${last:-0} + 1))
fi
cp "$OUT" "BENCH_${n}.json"
echo "bench-gate: wrote BENCH_${n}.json"
